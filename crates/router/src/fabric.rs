//! The switching fabric: a cell-slotted crossbar with virtual output
//! queues (VOQs), an iSLIP-style iterative matching scheduler, and
//! redundant switching planes.
//!
//! The paper assumes the fabric is made fault-tolerant by plane
//! redundancy (Cisco 12000-style 1:4 — its Case 1), so the Markov
//! analysis treats it as always functional. The simulator still models
//! plane failures so that assumption can be stressed: losing more
//! planes than the spare pool degrades slot capacity proportionally;
//! losing all planes stops the fabric.
//!
//! # The bitmask arbiter
//!
//! Request state is kept as per-output occupancy bitmaps over inputs
//! (one bit per non-empty VOQ, maintained incrementally on
//! enqueue/dequeue), and the grant/accept phases select each
//! round-robin winner with a rotate + `trailing_zeros` scan over u64
//! words instead of an O(n) pointer walk — O(n·⌈n/64⌉) per iteration
//! with branch-free inner loops, which is what lets 128- and 256-port
//! faceoffs stay simulation-bound rather than arbitration-bound.
//! Cells live in a [`CellArena`]; the VOQs, the matcher, and
//! [`Crossbar::schedule_slot_handles`] shuffle 4-byte [`CellHandle`]s,
//! and a cell is only copied again when it leaves the fabric through
//! [`Crossbar::take_cell`].
//!
//! **Determinism contract**: the bitmask arbiter produces the
//! identical (time, seq) match order to the retained scalar reference
//! ([`crate::fabric_ref::ScalarCrossbar`]) at every port count —
//! including non-multiples of 64 — and leaves identical round-robin
//! pointer state. `tests/fabric_equivalence.rs` proves it by proptest
//! over random request matrices and pointer states.

pub use crate::arena::{CellArena, CellHandle};
use dra_net::sar::Cell;
use std::collections::VecDeque;

/// Up-front reservation cap, in cells, across a fabric's VOQs and
/// arena. Queues are pre-sized so steady state at production configs
/// (e.g. 64 cards × 1024-cell VOQs) never reallocates, while
/// pathological `n² × voq_capacity` products (benchmarks passing
/// "effectively unbounded" capacities) stay clamped to this budget
/// and grow amortized past it instead of reserving gigabytes.
const PRESIZE_BUDGET_CELLS: usize = 1 << 22;

#[inline]
fn words_for(n: usize) -> usize {
    n.div_ceil(64)
}

#[inline]
fn set_bit(bits: &mut [u64], i: usize) {
    bits[i >> 6] |= 1u64 << (i & 63);
}

#[inline]
fn clear_bit(bits: &mut [u64], i: usize) {
    bits[i >> 6] &= !(1u64 << (i & 63));
}

/// Set the low `n` bits (the valid port positions), clear the rest.
fn fill_ports(bits: &mut [u64], n: usize) {
    for w in bits.iter_mut() {
        *w = !0;
    }
    let tail = n & 63;
    if tail != 0 {
        *bits.last_mut().expect("n > 0 implies at least one word") = !0u64 >> (64 - tail);
    }
}

/// First set bit of `row & mask` in circular order from `start`
/// (positions `start, start+1, …, wrapping to start-1`). All set bits
/// must lie below the port count; `start` must too.
///
/// Single-word fast path: rotating the word right by `start` maps
/// position `p` to `(p - start) mod 64`, whose `trailing_zeros` is
/// exactly the circular distance — bit positions at and above the
/// port count are never set, so the rotation cannot surface a phantom
/// winner.
#[inline]
fn first_set_circular_masked(row: &[u64], mask: &[u64], start: usize) -> Option<usize> {
    if row.len() == 1 {
        let x = row[0] & mask[0];
        if x == 0 {
            return None;
        }
        let k = x.rotate_right(start as u32).trailing_zeros() as usize;
        return Some((start + k) & 63);
    }
    let w = row.len();
    let sw = start >> 6;
    let sb = start & 63;
    let head = row[sw] & mask[sw] & (!0u64 << sb);
    if head != 0 {
        return Some((sw << 6) + head.trailing_zeros() as usize);
    }
    let mut idx = sw;
    for _ in 1..=w {
        idx += 1;
        if idx == w {
            idx = 0;
        }
        let mut x = row[idx] & mask[idx];
        if idx == sw {
            // Wrapped all the way around: only the bits below `start`
            // in the starting word remain unexamined.
            x &= !(!0u64 << sb);
        }
        if x != 0 {
            return Some((idx << 6) + x.trailing_zeros() as usize);
        }
    }
    None
}

/// [`first_set_circular_masked`] without a mask (accept phase: a
/// grant row already contains only unmatched outputs).
#[inline]
fn first_set_circular(row: &[u64], start: usize) -> Option<usize> {
    if row.len() == 1 {
        let x = row[0];
        if x == 0 {
            return None;
        }
        let k = x.rotate_right(start as u32).trailing_zeros() as usize;
        return Some((start + k) & 63);
    }
    let w = row.len();
    let sw = start >> 6;
    let sb = start & 63;
    let head = row[sw] & (!0u64 << sb);
    if head != 0 {
        return Some((sw << 6) + head.trailing_zeros() as usize);
    }
    let mut idx = sw;
    for _ in 1..=w {
        idx += 1;
        if idx == w {
            idx = 0;
        }
        let mut x = row[idx];
        if idx == sw {
            x &= !(!0u64 << sb);
        }
        if x != 0 {
            return Some((idx << 6) + x.trailing_zeros() as usize);
        }
    }
    None
}

/// A crossbar fabric with per-(input, output) virtual output queues.
#[derive(Debug)]
pub struct Crossbar {
    n_ports: usize,
    /// u64 words per port bitmap: ⌈n_ports/64⌉.
    words: usize,
    arena: CellArena,
    /// Handle queues, input-major: `voq[input * n + output]`.
    voq: Vec<VecDeque<CellHandle>>,
    voq_capacity: usize,
    /// Per-output request bitmaps over inputs, output-major rows of
    /// `words` u64s: bit `i` of row `o` ⟺ VOQ (i, o) is non-empty.
    requests: Vec<u64>,
    /// Per-output grant pointer (iSLIP round-robin state).
    grant_ptr: Vec<usize>,
    /// Per-input accept pointer.
    accept_ptr: Vec<usize>,
    iterations: usize,
    planes_total: usize,
    planes_required: usize,
    planes_failed: usize,
    queued_cells: usize,
    /// Matching scratch, owned so a slot allocates nothing.
    /// Unmatched-input / unmatched-output bitmaps.
    avail_in: Vec<u64>,
    avail_out: Vec<u64>,
    /// Per-input bitmaps of outputs granting to it this iteration,
    /// input-major rows; zeroed as each row is consumed by accept.
    granted: Vec<u64>,
    /// Inputs holding at least one grant this iteration.
    granted_any: Vec<u64>,
    /// input -> output of the final matching.
    input_matched: Vec<usize>,
    /// Cells moved in the most recent [`Crossbar::schedule_slot`];
    /// that method returns a view into this buffer.
    transferred: Vec<Cell>,
}

impl Crossbar {
    /// Build a fabric for `n_ports` linecards.
    ///
    /// * `voq_capacity` — max cells per (input, output) VOQ.
    /// * `iterations` — iSLIP request/grant/accept rounds per slot.
    /// * `planes_total` / `planes_required` — e.g. (5, 4) models the
    ///   Cisco 12000's 1:4 plane redundancy.
    pub fn new(
        n_ports: usize,
        voq_capacity: usize,
        iterations: usize,
        planes_total: usize,
        planes_required: usize,
    ) -> Self {
        assert!(n_ports > 0 && voq_capacity > 0 && iterations > 0);
        assert!(planes_total >= planes_required && planes_required > 0);
        let words = words_for(n_ports);
        let presize = voq_capacity
            .min((PRESIZE_BUDGET_CELLS / (n_ports * n_ports)).max(16))
            .max(1);
        Crossbar {
            n_ports,
            words,
            arena: CellArena::with_capacity(
                (n_ports * n_ports * presize).min(PRESIZE_BUDGET_CELLS),
            ),
            voq: (0..n_ports * n_ports)
                .map(|_| VecDeque::with_capacity(presize))
                .collect(),
            voq_capacity,
            requests: vec![0; n_ports * words],
            grant_ptr: vec![0; n_ports],
            accept_ptr: vec![0; n_ports],
            iterations,
            planes_total,
            planes_required,
            planes_failed: 0,
            queued_cells: 0,
            avail_in: vec![0; words],
            avail_out: vec![0; words],
            granted: vec![0; n_ports * words],
            granted_any: vec![0; words],
            input_matched: vec![usize::MAX; n_ports],
            transferred: Vec::with_capacity(n_ports),
        }
    }

    /// Number of ports.
    pub fn n_ports(&self) -> usize {
        self.n_ports
    }

    #[inline]
    fn voq_idx(&self, input: usize, output: usize) -> usize {
        input * self.n_ports + output
    }

    /// Cells currently queued across all VOQs.
    pub fn queued_cells(&self) -> usize {
        self.queued_cells
    }

    /// True when no cell is queued anywhere.
    pub fn is_empty(&self) -> bool {
        self.queued_cells == 0
    }

    /// Occupancy of one VOQ.
    pub fn voq_len(&self, input: usize, output: usize) -> usize {
        self.voq[self.voq_idx(input, output)].len()
    }

    /// The round-robin pointer state, `(grant, accept)`.
    pub fn pointers(&self) -> (&[usize], &[usize]) {
        (&self.grant_ptr, &self.accept_ptr)
    }

    /// Overwrite the round-robin pointer state (equivalence testing).
    pub fn set_pointers(&mut self, grant: &[usize], accept: &[usize]) {
        assert_eq!(grant.len(), self.n_ports);
        assert_eq!(accept.len(), self.n_ports);
        assert!(grant.iter().chain(accept).all(|&p| p < self.n_ports));
        self.grant_ptr.copy_from_slice(grant);
        self.accept_ptr.copy_from_slice(accept);
    }

    /// Fail one switching plane.
    pub fn fail_plane(&mut self) {
        if self.planes_failed < self.planes_total {
            self.planes_failed += 1;
        }
    }

    /// Repair one switching plane.
    pub fn repair_plane(&mut self) {
        self.planes_failed = self.planes_failed.saturating_sub(1);
    }

    /// Planes currently failed.
    pub fn planes_failed(&self) -> usize {
        self.planes_failed
    }

    /// Fraction of nominal slot capacity available:
    /// 1.0 while failures stay within the spare pool, then degrading
    /// proportionally, then 0.0 when no plane remains.
    pub fn capacity_fraction(&self) -> f64 {
        let active = self.planes_total - self.planes_failed;
        if active >= self.planes_required {
            1.0
        } else {
            active as f64 / self.planes_required as f64
        }
    }

    /// Is the fabric able to move any cells at all?
    pub fn operational(&self) -> bool {
        self.planes_failed < self.planes_total
    }

    /// Enqueue a cell into its VOQ.
    ///
    /// The cell is handed back as `Err` when it cannot be accepted —
    /// either its VOQ is full or it is addressed outside the fabric
    /// (`src_lc`/`dst_lc` ≥ [`Crossbar::n_ports`]). Misaddressed cells
    /// follow the overflow contract rather than panicking so a corrupt
    /// header injected by a fault scenario degrades into a countable
    /// drop instead of tearing down the whole simulation.
    pub fn enqueue(&mut self, cell: Cell) -> Result<(), Cell> {
        let (src, dst) = (cell.src_lc as usize, cell.dst_lc as usize);
        if src >= self.n_ports || dst >= self.n_ports {
            return Err(cell);
        }
        let idx = src * self.n_ports + dst;
        if self.voq[idx].len() >= self.voq_capacity {
            return Err(cell);
        }
        if self.voq[idx].is_empty() {
            let row = dst * self.words;
            set_bit(&mut self.requests[row..row + self.words], src);
        }
        let h = self.arena.alloc(cell);
        self.voq[idx].push_back(h);
        self.queued_cells += 1;
        Ok(())
    }

    /// Read a resident cell by handle (valid until
    /// [`Crossbar::take_cell`]).
    #[inline]
    pub fn cell(&self, h: CellHandle) -> &Cell {
        self.arena.get(h)
    }

    /// Move a transferred cell out of the fabric, releasing its arena
    /// slot. Every handle produced by
    /// [`Crossbar::schedule_slot_handles`] must be taken exactly once;
    /// a handle left untaken keeps its slot resident.
    #[inline]
    pub fn take_cell(&mut self, h: CellHandle) -> Cell {
        self.arena.take(h)
    }

    /// iSLIP matching for n ≤ 64: every bitmap is one machine word, so
    /// the whole phase state (unmatched inputs/outputs, who-granted-
    /// whom) lives in registers and both round-robin selections are a
    /// single rotate + `trailing_zeros` each.
    fn compute_matching_word(&mut self) {
        let n = self.n_ports;
        let ports = !0u64 >> (64 - n);
        let mut avail_in = ports;
        let mut avail_out = ports;
        self.input_matched.fill(usize::MAX);

        for iter in 0..self.iterations {
            let mut granted_any = 0u64;
            let mut outs = avail_out;
            while outs != 0 {
                let o = outs.trailing_zeros() as usize;
                outs &= outs - 1;
                let x = self.requests[o] & avail_in;
                if x != 0 {
                    let start = self.grant_ptr[o];
                    let k = x.rotate_right(start as u32).trailing_zeros() as usize;
                    let i = (start + k) & 63;
                    self.granted[i] |= 1u64 << o;
                    granted_any |= 1u64 << i;
                }
            }
            if granted_any == 0 {
                break;
            }
            let mut ins = granted_any;
            while ins != 0 {
                let i = ins.trailing_zeros() as usize;
                ins &= ins - 1;
                let row = self.granted[i];
                let start = self.accept_ptr[i];
                let k = row.rotate_right(start as u32).trailing_zeros() as usize;
                let o = (start + k) & 63;
                self.granted[i] = 0;
                self.input_matched[i] = o;
                avail_in &= !(1u64 << i);
                avail_out &= !(1u64 << o);
                if iter == 0 {
                    self.grant_ptr[o] = if i + 1 == n { 0 } else { i + 1 };
                    self.accept_ptr[i] = if o + 1 == n { 0 } else { o + 1 };
                }
            }
        }
    }

    /// iSLIP matching for n > 64: multi-word bitmaps with circular
    /// word-scans that stitch the wrap across word boundaries.
    fn compute_matching_wide(&mut self) {
        let n = self.n_ports;
        let w = self.words;
        fill_ports(&mut self.avail_in, n);
        fill_ports(&mut self.avail_out, n);
        self.input_matched.fill(usize::MAX);

        for iter in 0..self.iterations {
            // Grant phase: each unmatched output picks, round-robin
            // from its pointer, the first unmatched input with a cell
            // for it — one masked circular word-scan per output.
            self.granted_any.fill(0);
            let mut any_grant = false;
            for ow in 0..w {
                let mut outs = self.avail_out[ow];
                while outs != 0 {
                    let o = (ow << 6) + outs.trailing_zeros() as usize;
                    outs &= outs - 1;
                    let row = o * w;
                    if let Some(i) = first_set_circular_masked(
                        &self.requests[row..row + w],
                        &self.avail_in,
                        self.grant_ptr[o],
                    ) {
                        let grow = i * w;
                        set_bit(&mut self.granted[grow..grow + w], o);
                        set_bit(&mut self.granted_any, i);
                        any_grant = true;
                    }
                }
            }
            // Every grant goes to an unmatched input and each output
            // grants at most once, so per-input grant sets are disjoint
            // and every granted input will match below: no grants means
            // the matching cannot grow, exactly the scalar `any_match`
            // stop condition.
            if !any_grant {
                break;
            }
            // Accept phase: each granted input picks, round-robin from
            // its pointer, among the outputs that granted to it.
            for iw in 0..w {
                let mut ins = self.granted_any[iw];
                while ins != 0 {
                    let i = (iw << 6) + ins.trailing_zeros() as usize;
                    ins &= ins - 1;
                    let grow = i * w;
                    let o = first_set_circular(&self.granted[grow..grow + w], self.accept_ptr[i])
                        .expect("granted_any bit implies a grant");
                    self.granted[grow..grow + w].fill(0);
                    self.input_matched[i] = o;
                    clear_bit(&mut self.avail_in, i);
                    clear_bit(&mut self.avail_out, o);
                    if iter == 0 {
                        self.grant_ptr[o] = if i + 1 == n { 0 } else { i + 1 };
                        self.accept_ptr[i] = if o + 1 == n { 0 } else { o + 1 };
                    }
                }
            }
        }
    }

    /// Run the request/grant/accept iterations, leaving the result in
    /// `input_matched` (both variants share the determinism contract).
    #[inline]
    fn compute_matching(&mut self) {
        if self.words == 1 {
            self.compute_matching_word();
        } else {
            self.compute_matching_wide();
        }
    }

    /// Pop one matched VOQ head, keeping the request bitmap in sync
    /// with emptied queues.
    #[inline]
    fn pop_matched(&mut self, input: usize, output: usize) -> CellHandle {
        let q = &mut self.voq[input * self.n_ports + output];
        let h = q.pop_front().expect("matched VOQ is non-empty");
        if q.is_empty() {
            let row = output * self.words;
            clear_bit(&mut self.requests[row..row + self.words], input);
        }
        self.queued_cells -= 1;
        h
    }

    /// Run one slot of iSLIP matching and dequeue the matched cells,
    /// appending their handles to `out` (at most one per input and one
    /// per output, in ascending input order). The caller reads each
    /// winner through [`Crossbar::cell`] or claims it with
    /// [`Crossbar::take_cell`].
    ///
    /// Pointer updates follow the iSLIP rule: only first-iteration
    /// matches advance the round-robin pointers, which is what
    /// desynchronizes them under uniform load. The match order is
    /// bit-identical to [`crate::fabric_ref::ScalarCrossbar`] (see the
    /// module docs).
    pub fn schedule_slot_handles(&mut self, out: &mut Vec<CellHandle>) {
        if !self.operational() || self.queued_cells == 0 {
            return;
        }
        self.compute_matching();
        for input in 0..self.n_ports {
            let o = self.input_matched[input];
            if o != usize::MAX {
                let h = self.pop_matched(input, o);
                #[cfg(feature = "telemetry")]
                {
                    use dra_telemetry as tm;
                    tm::counter_add(tm::ids::ISLIP_GRANTS, 1);
                    tm::event(
                        tm::EventKind::IslipGrant,
                        self.arena.get(h).packet.0,
                        input as u32,
                        o as u32,
                    );
                }
                out.push(h);
            }
        }
    }

    /// Run one slot of iSLIP matching and dequeue the matched cells.
    ///
    /// By-value convenience over
    /// [`Crossbar::schedule_slot_handles`]: returns the cells
    /// transferred this slot as a borrow of a buffer the crossbar owns
    /// and reuses, so a slot allocates nothing. The view is valid
    /// until the next `schedule_slot` call; callers that need the
    /// cells across further `&mut` use copy them out first.
    pub fn schedule_slot(&mut self) -> &[Cell] {
        self.transferred.clear();
        if !self.operational() || self.queued_cells == 0 {
            return &self.transferred;
        }
        self.compute_matching();
        for input in 0..self.n_ports {
            let o = self.input_matched[input];
            if o != usize::MAX {
                let h = self.pop_matched(input, o);
                let cell = self.arena.take(h);
                self.transferred.push(cell);
            }
        }
        &self.transferred
    }
}

/// An idealized output-queued fabric, for comparison with the
/// iSLIP-scheduled [`Crossbar`].
///
/// Classic result: output queueing is the throughput/delay optimum but
/// needs N× internal speedup to move every arriving cell to its output
/// queue instantly; VOQ+iSLIP approximates it at speedup ~1–2. This
/// implementation grants the ideal (cells land in their output queue
/// on enqueue; each output drains one cell per slot), so benches can
/// show how close the crossbar gets. It shares the crossbar's arena +
/// occupancy-bitmap storage: a slot scans the non-empty-output bitmap
/// instead of every queue, and drains into a reused buffer.
#[derive(Debug)]
pub struct OutputQueuedFabric {
    n_ports: usize,
    arena: CellArena,
    queues: Vec<VecDeque<CellHandle>>,
    /// Bitmap of outputs with at least one queued cell.
    occupied: Vec<u64>,
    capacity: usize,
    queued: usize,
    /// Cells drained in the most recent slot; `schedule_slot` returns
    /// a view into this buffer.
    transferred: Vec<Cell>,
}

impl OutputQueuedFabric {
    /// A fabric for `n_ports` with per-output queue `capacity`.
    pub fn new(n_ports: usize, capacity: usize) -> Self {
        assert!(n_ports > 0 && capacity > 0);
        let presize = capacity
            .min((PRESIZE_BUDGET_CELLS / n_ports).max(16))
            .max(1);
        OutputQueuedFabric {
            n_ports,
            arena: CellArena::with_capacity((n_ports * presize).min(PRESIZE_BUDGET_CELLS)),
            queues: (0..n_ports)
                .map(|_| VecDeque::with_capacity(presize))
                .collect(),
            occupied: vec![0; words_for(n_ports)],
            capacity,
            queued: 0,
            transferred: Vec::with_capacity(n_ports),
        }
    }

    /// Number of ports.
    pub fn n_ports(&self) -> usize {
        self.n_ports
    }

    /// Cells queued across all outputs.
    pub fn queued_cells(&self) -> usize {
        self.queued
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Occupancy of one output queue.
    pub fn queue_len(&self, output: usize) -> usize {
        self.queues[output].len()
    }

    /// Enqueue straight into the destination's output queue; returns
    /// the cell on overflow.
    pub fn enqueue(&mut self, cell: Cell) -> Result<(), Cell> {
        let dst = cell.dst_lc as usize;
        if dst >= self.n_ports {
            return Err(cell);
        }
        if self.queues[dst].len() >= self.capacity {
            return Err(cell);
        }
        let h = self.arena.alloc(cell);
        self.queues[dst].push_back(h);
        set_bit(&mut self.occupied, dst);
        self.queued += 1;
        Ok(())
    }

    /// One slot: every non-empty output transmits its head-of-line
    /// cell. Returns a view into a reused buffer, valid until the next
    /// `schedule_slot` call.
    pub fn schedule_slot(&mut self) -> &[Cell] {
        self.transferred.clear();
        for wi in 0..self.occupied.len() {
            let mut bits = self.occupied[wi];
            while bits != 0 {
                let o = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let q = &mut self.queues[o];
                let h = q.pop_front().expect("occupied bit implies a cell");
                if q.is_empty() {
                    self.occupied[wi] &= !(1u64 << (o & 63));
                }
                self.queued -= 1;
                self.transferred.push(self.arena.take(h));
            }
        }
        &self.transferred
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_net::packet::PacketId;

    fn cell(src: u16, dst: u16, id: u64, seq: u16, total: u16) -> Cell {
        Cell {
            src_lc: src,
            dst_lc: dst,
            packet: PacketId(id),
            seq,
            total,
            payload_bytes: 48,
        }
    }

    #[test]
    fn single_flow_fifo_order() {
        let mut xb = Crossbar::new(4, 64, 2, 5, 4);
        for s in 0..5 {
            xb.enqueue(cell(0, 1, 1, s, 5)).unwrap();
        }
        let mut seqs = Vec::new();
        while !xb.is_empty() {
            for c in xb.schedule_slot() {
                seqs.push(c.seq);
            }
        }
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn one_match_per_input_and_output_per_slot() {
        let mut xb = Crossbar::new(4, 64, 3, 5, 4);
        // Every input has traffic for every output.
        for i in 0..4u16 {
            for o in 0..4u16 {
                for k in 0..4 {
                    xb.enqueue(cell(i, o, (i as u64) << 32 | o as u64, k, 4))
                        .unwrap();
                }
            }
        }
        let matched = xb.schedule_slot();
        assert!(matched.len() <= 4);
        let mut ins: Vec<u16> = matched.iter().map(|c| c.src_lc).collect();
        let mut outs: Vec<u16> = matched.iter().map(|c| c.dst_lc).collect();
        ins.sort_unstable();
        ins.dedup();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(ins.len(), matched.len(), "input matched twice");
        assert_eq!(outs.len(), matched.len(), "output matched twice");
    }

    #[test]
    fn uniform_backlog_reaches_full_throughput() {
        // With saturated uniform VOQs, iSLIP desynchronizes and should
        // sustain ~100% throughput (n matches per slot) after warmup.
        let n = 8;
        let mut xb = Crossbar::new(n, 10_000, 1, 1, 1);
        for i in 0..n as u16 {
            for o in 0..n as u16 {
                for k in 0..200 {
                    xb.enqueue(cell(
                        i,
                        o,
                        ((i as u64) << 40) | ((o as u64) << 20) | k,
                        0,
                        1,
                    ))
                    .unwrap();
                }
            }
        }
        // Warmup.
        for _ in 0..n {
            xb.schedule_slot();
        }
        let mut total = 0;
        let slots = 100;
        for _ in 0..slots {
            total += xb.schedule_slot().len();
        }
        assert!(
            total >= slots * n * 95 / 100,
            "throughput {total}/{} too low",
            slots * n
        );
    }

    #[test]
    fn head_of_line_contention_is_shared_fairly() {
        // Inputs 0 and 1 both send only to output 0: each should get
        // ~half the slots.
        let mut xb = Crossbar::new(2, 10_000, 1, 1, 1);
        for k in 0..100 {
            xb.enqueue(cell(0, 0, k, 0, 1)).unwrap();
            xb.enqueue(cell(1, 0, 1000 + k, 0, 1)).unwrap();
        }
        let mut from0 = 0;
        let mut from1 = 0;
        for _ in 0..100 {
            for c in xb.schedule_slot() {
                match c.src_lc {
                    0 => from0 += 1,
                    1 => from1 += 1,
                    _ => unreachable!(),
                }
            }
        }
        assert_eq!(from0 + from1, 100);
        assert!((45..=55).contains(&from0), "unfair split: {from0}/{from1}");
    }

    #[test]
    fn voq_overflow_returns_cell() {
        let mut xb = Crossbar::new(2, 2, 1, 1, 1);
        xb.enqueue(cell(0, 1, 1, 0, 3)).unwrap();
        xb.enqueue(cell(0, 1, 1, 1, 3)).unwrap();
        let rejected = xb.enqueue(cell(0, 1, 1, 2, 3));
        assert!(rejected.is_err());
        assert_eq!(xb.voq_len(0, 1), 2);
        assert_eq!(xb.queued_cells(), 2);
    }

    #[test]
    fn misaddressed_cell_is_rejected_not_panicked() {
        // A corrupt header pointing outside the fabric follows the
        // overflow contract: handed back as Err, state untouched.
        let mut xb = Crossbar::new(4, 16, 2, 5, 4);
        assert!(xb.enqueue(cell(4, 1, 1, 0, 1)).is_err(), "src out of range");
        assert!(xb.enqueue(cell(0, 9, 2, 0, 1)).is_err(), "dst out of range");
        assert_eq!(xb.queued_cells(), 0);
        // In-range traffic still flows.
        xb.enqueue(cell(3, 0, 3, 0, 1)).unwrap();
        assert_eq!(xb.queued_cells(), 1);
    }

    #[test]
    fn slot_buffer_is_reused_across_slots() {
        // The returned view is valid until the next slot; each call
        // reflects only that slot's transfers.
        let mut xb = Crossbar::new(2, 16, 1, 1, 1);
        xb.enqueue(cell(0, 1, 1, 0, 2)).unwrap();
        xb.enqueue(cell(0, 1, 1, 1, 2)).unwrap();
        assert_eq!(xb.schedule_slot().len(), 1);
        assert_eq!(xb.schedule_slot().len(), 1);
        assert!(
            xb.schedule_slot().is_empty(),
            "drained fabric moves nothing"
        );
    }

    #[test]
    fn handle_api_reads_then_takes() {
        // The handle API exposes each winner for inspection before the
        // caller claims it, and claims release arena slots.
        let mut xb = Crossbar::new(2, 16, 1, 1, 1);
        xb.enqueue(cell(0, 1, 7, 0, 1)).unwrap();
        xb.enqueue(cell(1, 0, 8, 0, 1)).unwrap();
        let mut handles = Vec::new();
        xb.schedule_slot_handles(&mut handles);
        assert_eq!(handles.len(), 2);
        let ids: Vec<u64> = handles.iter().map(|&h| xb.cell(h).packet.0).collect();
        assert_eq!(ids, vec![7, 8], "ascending input order");
        for h in handles.drain(..) {
            let c = xb.take_cell(h);
            assert!(c.packet.0 == 7 || c.packet.0 == 8);
        }
        assert!(xb.is_empty());
        xb.schedule_slot_handles(&mut handles);
        assert!(handles.is_empty(), "drained fabric matches nothing");
    }

    #[test]
    fn request_bitmaps_track_voq_occupancy() {
        // Enqueue/dequeue keep the request rows exactly in sync: after
        // draining, a fresh enqueue still schedules (a stale cleared
        // bit would starve the VOQ; a stale set bit would panic the
        // transfer pop).
        let mut xb = Crossbar::new(3, 8, 1, 1, 1);
        for round in 0..3 {
            xb.enqueue(cell(2, 1, 100 + round, 0, 1)).unwrap();
            let moved = xb.schedule_slot();
            assert_eq!(moved.len(), 1);
            assert_eq!(moved[0].packet.0, 100 + round);
            assert!(xb.is_empty());
        }
    }

    #[test]
    fn plane_redundancy_capacity_model() {
        let mut xb = Crossbar::new(4, 16, 1, 5, 4);
        assert_eq!(xb.capacity_fraction(), 1.0);
        xb.fail_plane(); // spare absorbs it
        assert_eq!(xb.capacity_fraction(), 1.0);
        assert!(xb.operational());
        xb.fail_plane(); // now 3 of 4 required
        assert_eq!(xb.capacity_fraction(), 0.75);
        xb.fail_plane();
        xb.fail_plane();
        xb.fail_plane(); // all 5 down
        assert!(!xb.operational());
        assert_eq!(xb.capacity_fraction(), 0.0);
        assert!(xb.schedule_slot().is_empty());
        xb.repair_plane();
        assert!(xb.operational());
        assert_eq!(xb.planes_failed(), 4);
    }

    #[test]
    fn empty_fabric_schedules_nothing() {
        let mut xb = Crossbar::new(4, 16, 2, 5, 4);
        assert!(xb.schedule_slot().is_empty());
        assert!(xb.is_empty());
    }

    #[test]
    fn non_word_multiple_port_count_wraps_correctly() {
        // 65 ports exercises the two-word circular scan: input 64
        // (word 1) and input 0 (word 0) contend for output 0, with the
        // grant pointer past both so the scan must wrap.
        let n = 65;
        let mut xb = Crossbar::new(n, 16, 1, 1, 1);
        xb.enqueue(cell(64, 0, 1, 0, 1)).unwrap();
        xb.enqueue(cell(0, 0, 2, 0, 1)).unwrap();
        let grant = vec![10; n]; // from 10: 64 comes before 0 (wrap)
        let accept = vec![0; n];
        xb.set_pointers(&grant, &accept);
        let first = xb.schedule_slot().to_vec();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].src_lc, 64, "circular order from 10 hits 64 first");
        let second = xb.schedule_slot().to_vec();
        assert_eq!(second[0].src_lc, 0);
        assert!(xb.is_empty());
    }

    // ---- output-queued comparison fabric ------------------------------

    #[test]
    fn oq_every_output_drains_each_slot() {
        let mut oq = OutputQueuedFabric::new(4, 64);
        // Three inputs all target output 0; one targets output 1.
        oq.enqueue(cell(0, 0, 1, 0, 1)).unwrap();
        oq.enqueue(cell(1, 0, 2, 0, 1)).unwrap();
        oq.enqueue(cell(2, 0, 3, 0, 1)).unwrap();
        oq.enqueue(cell(3, 1, 4, 0, 1)).unwrap();
        let s1_len = oq.schedule_slot().len();
        // One from output 0 plus one from output 1.
        assert_eq!(s1_len, 2);
        assert_eq!(oq.queued_cells(), 2);
        assert_eq!(oq.queue_len(0), 2);
    }

    #[test]
    fn oq_has_no_head_of_line_blocking() {
        // Permutation traffic: with one cell per distinct output, a
        // single slot clears everything (the crossbar would too here;
        // the difference shows under conflicting bursts, see bench).
        let mut oq = OutputQueuedFabric::new(8, 64);
        for i in 0..8u16 {
            oq.enqueue(cell(i, (i + 3) % 8, i as u64, 0, 1)).unwrap();
        }
        assert_eq!(oq.schedule_slot().len(), 8);
        assert!(oq.is_empty());
    }

    #[test]
    fn oq_overflow_returns_cell() {
        let mut oq = OutputQueuedFabric::new(2, 1);
        oq.enqueue(cell(0, 1, 1, 0, 1)).unwrap();
        assert!(oq.enqueue(cell(1, 1, 2, 0, 1)).is_err());
        assert_eq!(oq.queued_cells(), 1);
    }

    #[test]
    fn oq_fifo_per_output() {
        let mut oq = OutputQueuedFabric::new(2, 16);
        for k in 0..4 {
            oq.enqueue(cell(0, 1, k, 0, 1)).unwrap();
        }
        let mut seen = Vec::new();
        while !oq.is_empty() {
            for c in oq.schedule_slot() {
                seen.push(c.packet.0);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }
}
