//! The switching fabric: a cell-slotted crossbar with virtual output
//! queues (VOQs), an iSLIP-style iterative matching scheduler, and
//! redundant switching planes.
//!
//! The paper assumes the fabric is made fault-tolerant by plane
//! redundancy (Cisco 12000-style 1:4 — its Case 1), so the Markov
//! analysis treats it as always functional. The simulator still models
//! plane failures so that assumption can be stressed: losing more
//! planes than the spare pool degrades slot capacity proportionally;
//! losing all planes stops the fabric.

use dra_net::sar::Cell;
use std::collections::VecDeque;

/// A crossbar fabric with per-(input, output) virtual output queues.
#[derive(Debug)]
pub struct Crossbar {
    n_ports: usize,
    voq: Vec<VecDeque<Cell>>,
    voq_capacity: usize,
    /// Per-output grant pointer (iSLIP round-robin state).
    grant_ptr: Vec<usize>,
    /// Per-input accept pointer.
    accept_ptr: Vec<usize>,
    iterations: usize,
    planes_total: usize,
    planes_required: usize,
    planes_failed: usize,
    queued_cells: usize,
    /// Matching scratch, owned so [`Crossbar::schedule_slot`] is
    /// allocation-free: input -> output, output -> input, and the
    /// grant phase's output -> input proposals.
    input_matched: Vec<usize>,
    output_matched: Vec<usize>,
    grants: Vec<usize>,
    /// Cells moved in the most recent slot; `schedule_slot` returns a
    /// view into this buffer.
    transferred: Vec<Cell>,
}

impl Crossbar {
    /// Build a fabric for `n_ports` linecards.
    ///
    /// * `voq_capacity` — max cells per (input, output) VOQ.
    /// * `iterations` — iSLIP request/grant/accept rounds per slot.
    /// * `planes_total` / `planes_required` — e.g. (5, 4) models the
    ///   Cisco 12000's 1:4 plane redundancy.
    pub fn new(
        n_ports: usize,
        voq_capacity: usize,
        iterations: usize,
        planes_total: usize,
        planes_required: usize,
    ) -> Self {
        assert!(n_ports > 0 && voq_capacity > 0 && iterations > 0);
        assert!(planes_total >= planes_required && planes_required > 0);
        Crossbar {
            n_ports,
            voq: (0..n_ports * n_ports).map(|_| VecDeque::new()).collect(),
            voq_capacity,
            grant_ptr: vec![0; n_ports],
            accept_ptr: vec![0; n_ports],
            iterations,
            planes_total,
            planes_required,
            planes_failed: 0,
            queued_cells: 0,
            input_matched: vec![usize::MAX; n_ports],
            output_matched: vec![usize::MAX; n_ports],
            grants: vec![usize::MAX; n_ports],
            transferred: Vec::with_capacity(n_ports),
        }
    }

    /// Number of ports.
    pub fn n_ports(&self) -> usize {
        self.n_ports
    }

    #[inline]
    fn voq_idx(&self, input: usize, output: usize) -> usize {
        input * self.n_ports + output
    }

    /// Cells currently queued across all VOQs.
    pub fn queued_cells(&self) -> usize {
        self.queued_cells
    }

    /// True when no cell is queued anywhere.
    pub fn is_empty(&self) -> bool {
        self.queued_cells == 0
    }

    /// Occupancy of one VOQ.
    pub fn voq_len(&self, input: usize, output: usize) -> usize {
        self.voq[self.voq_idx(input, output)].len()
    }

    /// Fail one switching plane.
    pub fn fail_plane(&mut self) {
        if self.planes_failed < self.planes_total {
            self.planes_failed += 1;
        }
    }

    /// Repair one switching plane.
    pub fn repair_plane(&mut self) {
        self.planes_failed = self.planes_failed.saturating_sub(1);
    }

    /// Planes currently failed.
    pub fn planes_failed(&self) -> usize {
        self.planes_failed
    }

    /// Fraction of nominal slot capacity available:
    /// 1.0 while failures stay within the spare pool, then degrading
    /// proportionally, then 0.0 when no plane remains.
    pub fn capacity_fraction(&self) -> f64 {
        let active = self.planes_total - self.planes_failed;
        if active >= self.planes_required {
            1.0
        } else {
            active as f64 / self.planes_required as f64
        }
    }

    /// Is the fabric able to move any cells at all?
    pub fn operational(&self) -> bool {
        self.planes_failed < self.planes_total
    }

    /// Enqueue a cell into its VOQ.
    ///
    /// The cell is handed back as `Err` when it cannot be accepted —
    /// either its VOQ is full or it is addressed outside the fabric
    /// (`src_lc`/`dst_lc` ≥ [`Crossbar::n_ports`]). Misaddressed cells
    /// follow the overflow contract rather than panicking so a corrupt
    /// header injected by a fault scenario degrades into a countable
    /// drop instead of tearing down the whole simulation.
    pub fn enqueue(&mut self, cell: Cell) -> Result<(), Cell> {
        let (src, dst) = (cell.src_lc as usize, cell.dst_lc as usize);
        if src >= self.n_ports || dst >= self.n_ports {
            return Err(cell);
        }
        let idx = self.voq_idx(src, dst);
        if self.voq[idx].len() >= self.voq_capacity {
            return Err(cell);
        }
        self.voq[idx].push_back(cell);
        self.queued_cells += 1;
        Ok(())
    }

    /// Run one slot of iSLIP matching and dequeue the matched cells.
    ///
    /// Returns the cells transferred this slot — at most one per input
    /// and one per output — as a borrow of a buffer the crossbar owns
    /// and reuses, so a slot allocates nothing. The view is valid
    /// until the next `schedule_slot` call; callers that need the
    /// cells across further `&mut` use copy them out first. Pointer
    /// updates follow the iSLIP rule: only first-iteration matches
    /// advance the round-robin pointers, which is what desynchronizes
    /// them under uniform load.
    // The grant/accept phases walk ports by index across four parallel
    // arrays; explicit indices beat zipped iterators for clarity here.
    #[allow(clippy::needless_range_loop)]
    pub fn schedule_slot(&mut self) -> &[Cell] {
        self.transferred.clear();
        if !self.operational() || self.queued_cells == 0 {
            return &self.transferred;
        }
        let n = self.n_ports;
        self.input_matched.fill(usize::MAX); // input -> output
        self.output_matched.fill(usize::MAX); // output -> input

        for iter in 0..self.iterations {
            // Grant phase: each unmatched output picks, round-robin from
            // its pointer, among unmatched inputs with a cell for it.
            self.grants.fill(usize::MAX); // output -> input
            for out in 0..n {
                if self.output_matched[out] != usize::MAX {
                    continue;
                }
                let start = self.grant_ptr[out];
                for k in 0..n {
                    // `start + k` stays below 2n: a conditional
                    // subtract replaces the div in `% n`.
                    let mut input = start + k;
                    if input >= n {
                        input -= n;
                    }
                    if self.input_matched[input] == usize::MAX
                        && !self.voq[input * n + out].is_empty()
                    {
                        self.grants[out] = input;
                        break;
                    }
                }
            }
            // Accept phase: each input picks, round-robin from its
            // pointer, among outputs that granted to it.
            let mut any_match = false;
            for input in 0..n {
                if self.input_matched[input] != usize::MAX {
                    continue;
                }
                let start = self.accept_ptr[input];
                for k in 0..n {
                    let mut out = start + k;
                    if out >= n {
                        out -= n;
                    }
                    if self.grants[out] == input {
                        self.input_matched[input] = out;
                        self.output_matched[out] = input;
                        any_match = true;
                        if iter == 0 {
                            let mut g = input + 1;
                            if g >= n {
                                g -= n;
                            }
                            let mut a = out + 1;
                            if a >= n {
                                a -= n;
                            }
                            self.grant_ptr[out] = g;
                            self.accept_ptr[input] = a;
                        }
                        break;
                    }
                }
            }
            if !any_match {
                break;
            }
        }

        for input in 0..n {
            let out = self.input_matched[input];
            if out != usize::MAX {
                let idx = input * n + out;
                if let Some(cell) = self.voq[idx].pop_front() {
                    self.queued_cells -= 1;
                    self.transferred.push(cell);
                }
            }
        }
        &self.transferred
    }
}

/// An idealized output-queued fabric, for comparison with the
/// iSLIP-scheduled [`Crossbar`].
///
/// Classic result: output queueing is the throughput/delay optimum but
/// needs N× internal speedup to move every arriving cell to its output
/// queue instantly; VOQ+iSLIP approximates it at speedup ~1–2. This
/// implementation grants the ideal (cells land in their output queue
/// on enqueue; each output drains one cell per slot), so benches can
/// show how close the crossbar gets.
#[derive(Debug)]
pub struct OutputQueuedFabric {
    n_ports: usize,
    queues: Vec<VecDeque<Cell>>,
    capacity: usize,
    queued: usize,
}

impl OutputQueuedFabric {
    /// A fabric for `n_ports` with per-output queue `capacity`.
    pub fn new(n_ports: usize, capacity: usize) -> Self {
        assert!(n_ports > 0 && capacity > 0);
        OutputQueuedFabric {
            n_ports,
            queues: (0..n_ports).map(|_| VecDeque::new()).collect(),
            capacity,
            queued: 0,
        }
    }

    /// Number of ports.
    pub fn n_ports(&self) -> usize {
        self.n_ports
    }

    /// Cells queued across all outputs.
    pub fn queued_cells(&self) -> usize {
        self.queued
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Occupancy of one output queue.
    pub fn queue_len(&self, output: usize) -> usize {
        self.queues[output].len()
    }

    /// Enqueue straight into the destination's output queue; returns
    /// the cell on overflow.
    pub fn enqueue(&mut self, cell: Cell) -> Result<(), Cell> {
        let q = &mut self.queues[cell.dst_lc as usize];
        if q.len() >= self.capacity {
            return Err(cell);
        }
        q.push_back(cell);
        self.queued += 1;
        Ok(())
    }

    /// One slot: every output transmits its head-of-line cell.
    pub fn schedule_slot(&mut self) -> Vec<Cell> {
        let mut out = Vec::new();
        for q in &mut self.queues {
            if let Some(cell) = q.pop_front() {
                self.queued -= 1;
                out.push(cell);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_net::packet::PacketId;

    fn cell(src: u16, dst: u16, id: u64, seq: u16, total: u16) -> Cell {
        Cell {
            src_lc: src,
            dst_lc: dst,
            packet: PacketId(id),
            seq,
            total,
            payload_bytes: 48,
        }
    }

    #[test]
    fn single_flow_fifo_order() {
        let mut xb = Crossbar::new(4, 64, 2, 5, 4);
        for s in 0..5 {
            xb.enqueue(cell(0, 1, 1, s, 5)).unwrap();
        }
        let mut seqs = Vec::new();
        while !xb.is_empty() {
            for c in xb.schedule_slot() {
                seqs.push(c.seq);
            }
        }
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn one_match_per_input_and_output_per_slot() {
        let mut xb = Crossbar::new(4, 64, 3, 5, 4);
        // Every input has traffic for every output.
        for i in 0..4u16 {
            for o in 0..4u16 {
                for k in 0..4 {
                    xb.enqueue(cell(i, o, (i as u64) << 32 | o as u64, k, 4))
                        .unwrap();
                }
            }
        }
        let matched = xb.schedule_slot();
        assert!(matched.len() <= 4);
        let mut ins: Vec<u16> = matched.iter().map(|c| c.src_lc).collect();
        let mut outs: Vec<u16> = matched.iter().map(|c| c.dst_lc).collect();
        ins.sort_unstable();
        ins.dedup();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(ins.len(), matched.len(), "input matched twice");
        assert_eq!(outs.len(), matched.len(), "output matched twice");
    }

    #[test]
    fn uniform_backlog_reaches_full_throughput() {
        // With saturated uniform VOQs, iSLIP desynchronizes and should
        // sustain ~100% throughput (n matches per slot) after warmup.
        let n = 8;
        let mut xb = Crossbar::new(n, 10_000, 1, 1, 1);
        for i in 0..n as u16 {
            for o in 0..n as u16 {
                for k in 0..200 {
                    xb.enqueue(cell(
                        i,
                        o,
                        ((i as u64) << 40) | ((o as u64) << 20) | k,
                        0,
                        1,
                    ))
                    .unwrap();
                }
            }
        }
        // Warmup.
        for _ in 0..n {
            xb.schedule_slot();
        }
        let mut total = 0;
        let slots = 100;
        for _ in 0..slots {
            total += xb.schedule_slot().len();
        }
        assert!(
            total >= slots * n * 95 / 100,
            "throughput {total}/{} too low",
            slots * n
        );
    }

    #[test]
    fn head_of_line_contention_is_shared_fairly() {
        // Inputs 0 and 1 both send only to output 0: each should get
        // ~half the slots.
        let mut xb = Crossbar::new(2, 10_000, 1, 1, 1);
        for k in 0..100 {
            xb.enqueue(cell(0, 0, k, 0, 1)).unwrap();
            xb.enqueue(cell(1, 0, 1000 + k, 0, 1)).unwrap();
        }
        let mut from0 = 0;
        let mut from1 = 0;
        for _ in 0..100 {
            for c in xb.schedule_slot() {
                match c.src_lc {
                    0 => from0 += 1,
                    1 => from1 += 1,
                    _ => unreachable!(),
                }
            }
        }
        assert_eq!(from0 + from1, 100);
        assert!((45..=55).contains(&from0), "unfair split: {from0}/{from1}");
    }

    #[test]
    fn voq_overflow_returns_cell() {
        let mut xb = Crossbar::new(2, 2, 1, 1, 1);
        xb.enqueue(cell(0, 1, 1, 0, 3)).unwrap();
        xb.enqueue(cell(0, 1, 1, 1, 3)).unwrap();
        let rejected = xb.enqueue(cell(0, 1, 1, 2, 3));
        assert!(rejected.is_err());
        assert_eq!(xb.voq_len(0, 1), 2);
        assert_eq!(xb.queued_cells(), 2);
    }

    #[test]
    fn misaddressed_cell_is_rejected_not_panicked() {
        // A corrupt header pointing outside the fabric follows the
        // overflow contract: handed back as Err, state untouched.
        let mut xb = Crossbar::new(4, 16, 2, 5, 4);
        assert!(xb.enqueue(cell(4, 1, 1, 0, 1)).is_err(), "src out of range");
        assert!(xb.enqueue(cell(0, 9, 2, 0, 1)).is_err(), "dst out of range");
        assert_eq!(xb.queued_cells(), 0);
        // In-range traffic still flows.
        xb.enqueue(cell(3, 0, 3, 0, 1)).unwrap();
        assert_eq!(xb.queued_cells(), 1);
    }

    #[test]
    fn slot_buffer_is_reused_across_slots() {
        // The returned view is valid until the next slot; each call
        // reflects only that slot's transfers.
        let mut xb = Crossbar::new(2, 16, 1, 1, 1);
        xb.enqueue(cell(0, 1, 1, 0, 2)).unwrap();
        xb.enqueue(cell(0, 1, 1, 1, 2)).unwrap();
        assert_eq!(xb.schedule_slot().len(), 1);
        assert_eq!(xb.schedule_slot().len(), 1);
        assert!(
            xb.schedule_slot().is_empty(),
            "drained fabric moves nothing"
        );
    }

    #[test]
    fn plane_redundancy_capacity_model() {
        let mut xb = Crossbar::new(4, 16, 1, 5, 4);
        assert_eq!(xb.capacity_fraction(), 1.0);
        xb.fail_plane(); // spare absorbs it
        assert_eq!(xb.capacity_fraction(), 1.0);
        assert!(xb.operational());
        xb.fail_plane(); // now 3 of 4 required
        assert_eq!(xb.capacity_fraction(), 0.75);
        xb.fail_plane();
        xb.fail_plane();
        xb.fail_plane(); // all 5 down
        assert!(!xb.operational());
        assert_eq!(xb.capacity_fraction(), 0.0);
        assert!(xb.schedule_slot().is_empty());
        xb.repair_plane();
        assert!(xb.operational());
        assert_eq!(xb.planes_failed(), 4);
    }

    #[test]
    fn empty_fabric_schedules_nothing() {
        let mut xb = Crossbar::new(4, 16, 2, 5, 4);
        assert!(xb.schedule_slot().is_empty());
        assert!(xb.is_empty());
    }

    // ---- output-queued comparison fabric ------------------------------

    #[test]
    fn oq_every_output_drains_each_slot() {
        let mut oq = OutputQueuedFabric::new(4, 64);
        // Three inputs all target output 0; one targets output 1.
        oq.enqueue(cell(0, 0, 1, 0, 1)).unwrap();
        oq.enqueue(cell(1, 0, 2, 0, 1)).unwrap();
        oq.enqueue(cell(2, 0, 3, 0, 1)).unwrap();
        oq.enqueue(cell(3, 1, 4, 0, 1)).unwrap();
        let s1 = oq.schedule_slot();
        // One from output 0 plus one from output 1.
        assert_eq!(s1.len(), 2);
        assert_eq!(oq.queued_cells(), 2);
        assert_eq!(oq.queue_len(0), 2);
    }

    #[test]
    fn oq_has_no_head_of_line_blocking() {
        // Permutation traffic: with one cell per distinct output, a
        // single slot clears everything (the crossbar would too here;
        // the difference shows under conflicting bursts, see bench).
        let mut oq = OutputQueuedFabric::new(8, 64);
        for i in 0..8u16 {
            oq.enqueue(cell(i, (i + 3) % 8, i as u64, 0, 1)).unwrap();
        }
        assert_eq!(oq.schedule_slot().len(), 8);
        assert!(oq.is_empty());
    }

    #[test]
    fn oq_overflow_returns_cell() {
        let mut oq = OutputQueuedFabric::new(2, 1);
        oq.enqueue(cell(0, 1, 1, 0, 1)).unwrap();
        assert!(oq.enqueue(cell(1, 1, 2, 0, 1)).is_err());
        assert_eq!(oq.queued_cells(), 1);
    }

    #[test]
    fn oq_fifo_per_output() {
        let mut oq = OutputQueuedFabric::new(2, 16);
        for k in 0..4 {
            oq.enqueue(cell(0, 1, k, 0, 1)).unwrap();
        }
        let mut seen = Vec::new();
        while !oq.is_empty() {
            for c in oq.schedule_slot() {
                seen.push(c.packet.0);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }
}
