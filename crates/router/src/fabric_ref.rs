//! The retained scalar iSLIP reference.
//!
//! [`ScalarCrossbar`] is the pre-bitmask arbiter, kept verbatim as the
//! executable specification of the matching order: each grant/accept
//! phase walks port indices with an O(n) round-robin pointer scan and
//! every VOQ stores its cells by value. The production
//! [`crate::fabric::Crossbar`] replaces those walks with u64 word
//! bitmaps and an arena of cell handles, and is contractually bound to
//! produce the *identical* (time, seq) match sequence — the
//! equivalence proptest in `tests/fabric_equivalence.rs` drives both
//! over random request matrices and pointer states and compares every
//! transferred cell and every pointer after every slot.
//!
//! Not wired into any simulation path; exists only to be compared
//! against.

use dra_net::sar::Cell;
use std::collections::VecDeque;

/// The scalar-reference crossbar (see the module docs).
#[derive(Debug)]
pub struct ScalarCrossbar {
    n_ports: usize,
    voq: Vec<VecDeque<Cell>>,
    voq_capacity: usize,
    grant_ptr: Vec<usize>,
    accept_ptr: Vec<usize>,
    iterations: usize,
    queued_cells: usize,
    input_matched: Vec<usize>,
    output_matched: Vec<usize>,
    grants: Vec<usize>,
    transferred: Vec<Cell>,
}

impl ScalarCrossbar {
    /// Build a reference fabric (no plane model — the reference covers
    /// only the arbitration contract).
    pub fn new(n_ports: usize, voq_capacity: usize, iterations: usize) -> Self {
        assert!(n_ports > 0 && voq_capacity > 0 && iterations > 0);
        ScalarCrossbar {
            n_ports,
            voq: (0..n_ports * n_ports).map(|_| VecDeque::new()).collect(),
            voq_capacity,
            grant_ptr: vec![0; n_ports],
            accept_ptr: vec![0; n_ports],
            iterations,
            queued_cells: 0,
            input_matched: vec![usize::MAX; n_ports],
            output_matched: vec![usize::MAX; n_ports],
            grants: vec![usize::MAX; n_ports],
            transferred: Vec::new(),
        }
    }

    /// Cells currently queued.
    pub fn queued_cells(&self) -> usize {
        self.queued_cells
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queued_cells == 0
    }

    /// The round-robin pointer state, `(grant, accept)`.
    pub fn pointers(&self) -> (&[usize], &[usize]) {
        (&self.grant_ptr, &self.accept_ptr)
    }

    /// Overwrite the round-robin pointer state (equivalence testing).
    pub fn set_pointers(&mut self, grant: &[usize], accept: &[usize]) {
        assert_eq!(grant.len(), self.n_ports);
        assert_eq!(accept.len(), self.n_ports);
        assert!(grant.iter().chain(accept).all(|&p| p < self.n_ports));
        self.grant_ptr.copy_from_slice(grant);
        self.accept_ptr.copy_from_slice(accept);
    }

    /// Enqueue a cell; handed back as `Err` when the VOQ is full or
    /// the address is out of range.
    pub fn enqueue(&mut self, cell: Cell) -> Result<(), Cell> {
        let (src, dst) = (cell.src_lc as usize, cell.dst_lc as usize);
        if src >= self.n_ports || dst >= self.n_ports {
            return Err(cell);
        }
        let idx = src * self.n_ports + dst;
        if self.voq[idx].len() >= self.voq_capacity {
            return Err(cell);
        }
        self.voq[idx].push_back(cell);
        self.queued_cells += 1;
        Ok(())
    }

    /// One slot of scalar iSLIP matching; returns the transferred
    /// cells (at most one per input and per output).
    // The grant/accept phases walk ports by index across four parallel
    // arrays; explicit indices beat zipped iterators for clarity here.
    #[allow(clippy::needless_range_loop)]
    pub fn schedule_slot(&mut self) -> &[Cell] {
        self.transferred.clear();
        if self.queued_cells == 0 {
            return &self.transferred;
        }
        let n = self.n_ports;
        self.input_matched.fill(usize::MAX); // input -> output
        self.output_matched.fill(usize::MAX); // output -> input

        for iter in 0..self.iterations {
            // Grant phase: each unmatched output picks, round-robin from
            // its pointer, among unmatched inputs with a cell for it.
            self.grants.fill(usize::MAX); // output -> input
            for out in 0..n {
                if self.output_matched[out] != usize::MAX {
                    continue;
                }
                let start = self.grant_ptr[out];
                for k in 0..n {
                    let mut input = start + k;
                    if input >= n {
                        input -= n;
                    }
                    if self.input_matched[input] == usize::MAX
                        && !self.voq[input * n + out].is_empty()
                    {
                        self.grants[out] = input;
                        break;
                    }
                }
            }
            // Accept phase: each input picks, round-robin from its
            // pointer, among outputs that granted to it. Only
            // first-iteration matches advance the pointers.
            let mut any_match = false;
            for input in 0..n {
                if self.input_matched[input] != usize::MAX {
                    continue;
                }
                let start = self.accept_ptr[input];
                for k in 0..n {
                    let mut out = start + k;
                    if out >= n {
                        out -= n;
                    }
                    if self.grants[out] == input {
                        self.input_matched[input] = out;
                        self.output_matched[out] = input;
                        any_match = true;
                        if iter == 0 {
                            let mut g = input + 1;
                            if g >= n {
                                g -= n;
                            }
                            let mut a = out + 1;
                            if a >= n {
                                a -= n;
                            }
                            self.grant_ptr[out] = g;
                            self.accept_ptr[input] = a;
                        }
                        break;
                    }
                }
            }
            if !any_match {
                break;
            }
        }

        for input in 0..n {
            let out = self.input_matched[input];
            if out != usize::MAX {
                let idx = input * n + out;
                if let Some(cell) = self.voq[idx].pop_front() {
                    self.queued_cells -= 1;
                    self.transferred.push(cell);
                }
            }
        }
        &self.transferred
    }
}
