//! Component-failure injection with a repair process.
//!
//! The paper's fault model (§3.2): permanent hardware faults at units
//! along the routing path, exponentially distributed with the §5
//! rates, rectified by replacing the unit (hot-swap), with a fixed
//! repair time irrespective of how many units failed.
//!
//! The injector is deliberately decoupled from the DES kernel: it
//! *samples* failure delays; the router models turn them into events.
//! A generation counter per linecard invalidates stale failure events
//! scheduled before a repair.

use crate::components::{ComponentKind, FailureRates};
use dra_des::random;
use rand::Rng;

/// How the failure process maps onto components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultGranularity {
    /// BDR: the whole linecard fails as one unit at rate λ_LC
    /// (reported against the SRU, since BDR folds everything together).
    WholeLc,
    /// DRA: PDLU, SRU, LFE, and bus controller fail independently;
    /// λ_LPI is split evenly between SRU and LFE.
    PerComponent,
}

/// Failure/repair sampling for one router.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Rates per hour.
    pub rates: FailureRates,
    /// Fixed repair time in hours (paper: 3 h or 12 h).
    pub repair_time_h: f64,
    /// Component granularity.
    pub granularity: FaultGranularity,
}

impl FaultInjector {
    /// Injector with the paper's rates.
    pub fn new(repair_time_h: f64, granularity: FaultGranularity) -> Self {
        assert!(repair_time_h > 0.0);
        FaultInjector {
            rates: FailureRates::PAPER,
            repair_time_h,
            granularity,
        }
    }

    /// Sample time-to-failure (hours) for every failable unit of a
    /// freshly repaired linecard. Returns `(unit, delay_h)` pairs.
    pub fn arm_linecard<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<(ComponentKind, f64)> {
        match self.granularity {
            FaultGranularity::WholeLc => {
                vec![(ComponentKind::Sru, random::exponential(rng, self.rates.lc))]
            }
            FaultGranularity::PerComponent => {
                let half_pi = self.rates.pi_units / 2.0;
                let mut v = vec![
                    (
                        ComponentKind::Pdlu,
                        random::exponential(rng, self.rates.pdlu),
                    ),
                    (ComponentKind::Sru, random::exponential(rng, half_pi)),
                    (ComponentKind::Lfe, random::exponential(rng, half_pi)),
                ];
                if self.rates.bus_controller > 0.0 {
                    v.push((
                        ComponentKind::BusController,
                        random::exponential(rng, self.rates.bus_controller),
                    ));
                }
                v
            }
        }
    }

    /// Sample time-to-failure (hours) of the EIB passive lines.
    pub fn arm_eib<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<f64> {
        if self.rates.eib > 0.0 {
            Some(random::exponential(rng, self.rates.eib))
        } else {
            None
        }
    }

    /// The fixed repair delay (hours).
    pub fn repair_delay_h(&self) -> f64 {
        self.repair_time_h
    }
}

/// Generation counters that invalidate stale failure events.
///
/// When linecard `lc` is repaired, its generation increments; failure
/// events stamped with an older generation are ignored on delivery.
#[derive(Debug, Clone)]
pub struct Generations {
    gens: Vec<u32>,
}

impl Generations {
    /// Counters for `n` linecards, all starting at generation 0.
    pub fn new(n: usize) -> Self {
        Generations { gens: vec![0; n] }
    }

    /// Current generation of a linecard.
    pub fn current(&self, lc: usize) -> u32 {
        self.gens[lc]
    }

    /// Bump on repair; returns the new generation.
    pub fn bump(&mut self, lc: usize) -> u32 {
        self.gens[lc] += 1;
        self.gens[lc]
    }

    /// Is an event stamped `gen` for `lc` still valid?
    pub fn is_current(&self, lc: usize, gen: u32) -> bool {
        self.gens[lc] == gen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn whole_lc_arms_single_failure() {
        let inj = FaultInjector::new(3.0, FaultGranularity::WholeLc);
        let mut rng = SmallRng::seed_from_u64(1);
        let armed = inj.arm_linecard(&mut rng);
        assert_eq!(armed.len(), 1);
        assert!(armed[0].1 > 0.0);
    }

    #[test]
    fn per_component_arms_all_units() {
        let inj = FaultInjector::new(3.0, FaultGranularity::PerComponent);
        let mut rng = SmallRng::seed_from_u64(1);
        let armed = inj.arm_linecard(&mut rng);
        let kinds: Vec<ComponentKind> = armed.iter().map(|&(k, _)| k).collect();
        assert_eq!(
            kinds,
            vec![
                ComponentKind::Pdlu,
                ComponentKind::Sru,
                ComponentKind::Lfe,
                ComponentKind::BusController
            ]
        );
        assert!(armed.iter().all(|&(_, d)| d > 0.0));
    }

    #[test]
    fn mean_time_to_lc_failure_matches_rate() {
        // Min of the per-component exponentials is exponential with the
        // summed rate λ_LC + λ_BC.
        let inj = FaultInjector::new(3.0, FaultGranularity::PerComponent);
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let first = inj
                .arm_linecard(&mut rng)
                .into_iter()
                .map(|(_, d)| d)
                .fold(f64::INFINITY, f64::min);
            sum += first;
        }
        let mean = sum / n as f64;
        let expect = 1.0 / (FailureRates::PAPER.lc + FailureRates::PAPER.bus_controller);
        assert!(
            (mean / expect - 1.0).abs() < 0.03,
            "mean {mean:.1} vs expected {expect:.1}"
        );
    }

    #[test]
    fn eib_arming_respects_zero_rate() {
        let mut inj = FaultInjector::new(3.0, FaultGranularity::PerComponent);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(inj.arm_eib(&mut rng).is_some());
        inj.rates.eib = 0.0;
        assert!(inj.arm_eib(&mut rng).is_none());
    }

    #[test]
    fn generations_invalidate_stale_events() {
        let mut g = Generations::new(2);
        assert!(g.is_current(0, 0));
        let ev_gen = g.current(0);
        let new_gen = g.bump(0); // repair happened
        assert_eq!(new_gen, 1);
        assert!(!g.is_current(0, ev_gen), "stale event must be ignored");
        assert!(g.is_current(0, new_gen));
        assert!(g.is_current(1, 0), "other LC unaffected");
    }

    #[test]
    #[should_panic]
    fn zero_repair_time_rejected() {
        FaultInjector::new(0.0, FaultGranularity::WholeLc);
    }
}
