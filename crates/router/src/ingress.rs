//! Batched ingress lookups: the LFE's slot-train front end.
//!
//! Hardware forwarding engines never look addresses up one at a time —
//! they pipeline a train of independent loads against the compiled FIB
//! so the table's memory latency overlaps across packets. This module
//! is the simulator's equivalent: each linecard pre-draws a train of
//! [`Arrival`]s from its dedicated traffic RNG and resolves all their
//! destinations in one [`Dir248Fib::lookup_batch`] call.
//!
//! Drawing ahead is observationally identical to drawing on demand:
//! the per-LC traffic RNG feeds *only* that linecard's arrival stream,
//! so the i-th arrival is the same bytes either way. Route churn is
//! handled by stamping the train with the FIB's generation counter and
//! re-batching the unconsumed tail when the stamp goes stale, so every
//! popped lookup result equals what a fresh `lookup` would return at
//! pop time.

use dra_net::addr::Ipv4Addr;
use dra_net::fib::Dir248Fib;
use dra_net::traffic::{Arrival, TrafficGen};
use rand::Rng;

/// Arrivals pre-drawn (and destinations batch-resolved) per train.
pub const LOOKUP_TRAIN: usize = 32;

/// One linecard's pre-resolved arrival train.
#[derive(Debug)]
pub struct ArrivalTrain {
    arrivals: [Arrival; LOOKUP_TRAIN],
    dsts: [Ipv4Addr; LOOKUP_TRAIN],
    egress: [Option<u16>; LOOKUP_TRAIN],
    /// Next unconsumed index; `LOOKUP_TRAIN` means empty.
    pos: usize,
    /// FIB generation the `egress` entries were batched under.
    generation: u64,
}

impl Default for ArrivalTrain {
    fn default() -> Self {
        Self::new()
    }
}

impl ArrivalTrain {
    /// An empty train; the first [`ArrivalTrain::pop`] fills it.
    pub fn new() -> Self {
        ArrivalTrain {
            arrivals: [Arrival {
                dt: 0.0,
                ip_bytes: 0,
                dst: Ipv4Addr(0),
            }; LOOKUP_TRAIN],
            dsts: [Ipv4Addr(0); LOOKUP_TRAIN],
            egress: [None; LOOKUP_TRAIN],
            pos: LOOKUP_TRAIN,
            generation: 0,
        }
    }

    /// Pop the next arrival together with its routed egress linecard,
    /// refilling the train from `gen`/`rng` when exhausted and
    /// re-batching the unconsumed tail if `fib` changed since the
    /// train's lookups were resolved.
    pub fn pop<G: TrafficGen, R: Rng>(
        &mut self,
        gen: &mut G,
        rng: &mut R,
        fib: &Dir248Fib,
    ) -> (Arrival, Option<u16>) {
        if self.pos == LOOKUP_TRAIN {
            for (a, d) in self.arrivals.iter_mut().zip(&mut self.dsts) {
                *a = gen.next_arrival(rng);
                *d = a.dst;
            }
            fib.lookup_batch(&self.dsts, &mut self.egress);
            self.pos = 0;
            self.generation = fib.generation();
        } else if self.generation != fib.generation() {
            // Route churn since batching: re-resolve what's left.
            fib.lookup_batch(&self.dsts[self.pos..], &mut self.egress[self.pos..]);
            self.generation = fib.generation();
        }
        let i = self.pos;
        self.pos += 1;
        (self.arrivals[i], self.egress[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_net::addr::Ipv4Prefix;
    use dra_net::fib::Fib;
    use dra_net::traffic::PoissonGen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn fib_for(n: usize) -> Dir248Fib {
        let mut fib = Dir248Fib::new();
        for lc in 0..n {
            fib.insert(
                Ipv4Prefix::new(Ipv4Addr::from_octets(10, lc as u8, 0, 0), 16),
                lc as u16,
            );
        }
        fib
    }

    fn gen_for(n: usize) -> PoissonGen {
        let bases: Vec<Ipv4Addr> = (1..n)
            .map(|lc| Ipv4Addr::from_octets(10, lc as u8, 0, 0))
            .collect();
        PoissonGen::new(1.5e9, &bases)
    }

    #[test]
    fn train_matches_unbatched_draws_and_lookups() {
        let fib = fib_for(6);
        let mut train = ArrivalTrain::new();
        let mut gen_a = gen_for(6);
        let mut gen_b = gen_for(6);
        let mut rng_a = SmallRng::seed_from_u64(77);
        let mut rng_b = SmallRng::seed_from_u64(77);
        for _ in 0..(3 * LOOKUP_TRAIN + 5) {
            let (a, egress) = train.pop(&mut gen_a, &mut rng_a, &fib);
            let expect = gen_b.next_arrival(&mut rng_b);
            assert_eq!(a, expect);
            assert_eq!(egress, fib.lookup(a.dst));
        }
    }

    #[test]
    fn route_churn_rebatches_the_unconsumed_tail() {
        let mut fib = fib_for(4);
        let mut train = ArrivalTrain::new();
        let mut gen = gen_for(4);
        let mut rng = SmallRng::seed_from_u64(5);
        // Consume a few entries, then withdraw every route: the rest
        // of the train must come back unroutable, not stale.
        for _ in 0..5 {
            let (a, egress) = train.pop(&mut gen, &mut rng, &fib);
            assert_eq!(egress, fib.lookup(a.dst));
            assert!(egress.is_some());
        }
        for lc in 0..4 {
            fib.remove(Ipv4Prefix::new(
                Ipv4Addr::from_octets(10, lc as u8, 0, 0),
                16,
            ));
        }
        for _ in 0..(LOOKUP_TRAIN - 5) {
            let (_, egress) = train.pop(&mut gen, &mut rng, &fib);
            assert_eq!(egress, None);
        }
        // And a route announced mid-train is picked up too.
        fib.insert(Ipv4Prefix::new(Ipv4Addr(0), 0), 3);
        let (_, egress) = train.pop(&mut gen, &mut rng, &fib);
        assert_eq!(egress, Some(3));
    }
}
