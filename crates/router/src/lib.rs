//! # dra-router
//!
//! The **BDR** (basic distributed router) baseline of the paper's
//! Figure 1, as a packet-level discrete-event simulation, plus all the
//! machinery the DRA architecture reuses:
//!
//! * [`components`] — linecard functional units (PIU, PDLU, SRU, LFE,
//!   bus controller), their health, and the paper's failure rates.
//! * [`fabric`] — a cell-slotted crossbar with virtual output queues,
//!   a bitmask iSLIP iterative scheduler over an indexed cell arena,
//!   and redundant switching planes (the paper's Case-1 fault
//!   tolerance).
//! * [`arena`] — the fixed-slab cell store behind the fabric's
//!   4-byte handles.
//! * [`fabric_ref`] — the retained scalar iSLIP arbiter, the
//!   executable spec for the bitmask arbiter's determinism contract.
//! * [`linecard`] — per-linecard state: protocol engine, FIB,
//!   reassembler, port rate.
//! * [`ingress`] — the LFE's batched lookup front end: per-linecard
//!   arrival trains resolved against the compiled DIR-24-8 FIB in one
//!   `lookup_batch` call, with generation-stamped invalidation under
//!   route churn.
//! * [`metrics`] — offered/delivered/drop accounting, latency, and
//!   time-weighted per-linecard availability.
//! * [`faults`] — exponential component-failure injection with a
//!   repair process (hot-swap semantics: repair restores the whole
//!   linecard).
//! * [`rp`] — the route processor and the internal bus's maintenance
//!   functions: versioned RIB with incremental FIB distribution, card
//!   discovery, health polling.
//! * [`bdr`] — the BDR router model itself: under any linecard
//!   component failure, that linecard's traffic is lost until repair —
//!   exactly the behaviour DRA is designed to fix.

#![warn(missing_docs)]

pub mod arena;
pub mod bdr;
pub mod components;
pub mod fabric;
pub mod fabric_ref;
pub mod faults;
pub mod ingress;
pub mod linecard;
pub mod metrics;
pub mod rp;

pub use arena::{CellArena, CellHandle};
pub use bdr::{BdrConfig, BdrRouter};
pub use components::{ComponentKind, FailureRates, Health, LcComponents};
pub use fabric::Crossbar;
pub use fabric_ref::ScalarCrossbar;
pub use ingress::{ArrivalTrain, LOOKUP_TRAIN};
pub use linecard::Linecard;
pub use metrics::{DropCause, LcMetrics, RouterMetrics};
