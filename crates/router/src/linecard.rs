//! Per-linecard state shared by the BDR and DRA simulators.

use crate::components::LcComponents;
use dra_net::fib::Dir248Fib;
use dra_net::packet::Packet;
use dra_net::protocol::{engine_for, ProtocolEngine, ProtocolKind};
use dra_net::sar::Reassembler;

/// Fixed per-packet LFE lookup latency (seconds). Representative of a
/// hardware TCAM/trie engine; only relative magnitudes matter.
pub const LFE_LOOKUP_DELAY_S: f64 = 100e-9;
/// Fixed PIU per-packet latency (seconds).
pub const PIU_DELAY_S: f64 = 20e-9;
/// SRU per-cell segmentation/reassembly latency (seconds).
pub const SRU_PER_CELL_DELAY_S: f64 = 10e-9;

/// One linecard: identity, protocol engine (the PDLU), FIB (the LFE's
/// table), component health, and egress reassembly state.
#[derive(Debug)]
pub struct Linecard {
    /// Index of this linecard in the router.
    pub id: u16,
    /// The L2 protocol this card terminates.
    pub protocol: ProtocolKind,
    /// The protocol-dependent logic (PDLU model).
    pub engine: Box<dyn ProtocolEngine>,
    /// The local forwarding table (the compiled DIR-24-8 form the
    /// hardware LFE would run; `TrieFib` remains its executable spec).
    pub fib: Dir248Fib,
    /// Unit health. `components.piu` aggregates the ports: it reads
    /// `Failed` only when *every* PIU is down (see `fail_piu_port`).
    pub components: LcComponents,
    /// Aggregate line rate of the card in bits/second.
    pub port_rate_bps: f64,
    /// Number of external ports (the paper: "An LC may have one or
    /// multiple ports", each behind its own PIU).
    pub ports: u16,
    /// Ports whose PIU has failed. Each dead PIU disconnects one
    /// external link — losing `failed/ports` of the card's traffic —
    /// which no coverage scheme can recover (§3.2, Case 2/3 PIU).
    pub piu_failed_ports: u16,
    /// Egress-side reassembler.
    pub reassembler: Reassembler,
}

impl Linecard {
    /// A healthy single-port linecard with an empty FIB.
    pub fn new(id: u16, protocol: ProtocolKind, port_rate_bps: f64) -> Self {
        Self::with_ports(id, protocol, port_rate_bps, 1)
    }

    /// A healthy linecard with `ports` external ports.
    pub fn with_ports(id: u16, protocol: ProtocolKind, port_rate_bps: f64, ports: u16) -> Self {
        assert!(port_rate_bps > 0.0 && ports > 0);
        Linecard {
            id,
            protocol,
            engine: engine_for(protocol),
            fib: Dir248Fib::new(),
            components: LcComponents::healthy(),
            port_rate_bps,
            ports,
            piu_failed_ports: 0,
            reassembler: Reassembler::new(),
        }
    }

    /// Fail one port's PIU; the aggregate `components.piu` flips to
    /// `Failed` once no port remains.
    pub fn fail_piu_port(&mut self) {
        if self.piu_failed_ports < self.ports {
            self.piu_failed_ports += 1;
        }
        if self.piu_failed_ports == self.ports {
            self.components.set(
                crate::components::ComponentKind::Piu,
                crate::components::Health::Failed,
            );
        }
    }

    /// Fraction of the card's external links currently disconnected.
    pub fn piu_loss_fraction(&self) -> f64 {
        self.piu_failed_ports as f64 / self.ports as f64
    }

    /// Hot-swap repair: all units and all ports.
    pub fn repair_all(&mut self) {
        self.components.repair_all();
        self.piu_failed_ports = 0;
    }

    /// Total ingress pipeline latency for `packet`: PIU + PDLU
    /// (protocol decap) + LFE lookup + SRU segmentation.
    pub fn ingress_delay(&self, packet: &Packet) -> f64 {
        let cells = dra_net::sar::cells_for(packet.ip_bytes) as f64;
        PIU_DELAY_S
            + self.engine.processing_delay(packet.ip_bytes)
            + LFE_LOOKUP_DELAY_S
            + SRU_PER_CELL_DELAY_S * cells
    }

    /// Total egress pipeline latency: SRU reassembly + PDLU (protocol
    /// encap) + PIU, plus wire serialization at the port rate.
    pub fn egress_delay(&self, ip_bytes: u32) -> f64 {
        let cells = dra_net::sar::cells_for(ip_bytes) as f64;
        let wire_bits = self.engine.wire_bytes(ip_bytes) as f64 * 8.0;
        SRU_PER_CELL_DELAY_S * cells
            + self.engine.processing_delay(ip_bytes)
            + PIU_DELAY_S
            + wire_bits / self.port_rate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{ComponentKind, Health};
    use dra_net::addr::Ipv4Addr;
    use dra_net::fib::Fib;
    use dra_net::packet::PacketId;

    fn packet(bytes: u32) -> Packet {
        Packet::new(
            PacketId(0),
            Ipv4Addr(1),
            Ipv4Addr(2),
            bytes,
            ProtocolKind::Ethernet,
            0.0,
        )
    }

    #[test]
    fn construction_defaults() {
        let lc = Linecard::new(3, ProtocolKind::Pos, 10e9);
        assert_eq!(lc.id, 3);
        assert_eq!(lc.protocol, ProtocolKind::Pos);
        assert_eq!(lc.engine.kind(), ProtocolKind::Pos);
        assert!(lc.components.all_healthy());
        assert!(lc.fib.is_empty());
    }

    #[test]
    fn ingress_delay_grows_with_packet_size() {
        let lc = Linecard::new(0, ProtocolKind::Ethernet, 10e9);
        assert!(lc.ingress_delay(&packet(1500)) > lc.ingress_delay(&packet(40)));
        assert!(lc.ingress_delay(&packet(40)) > 0.0);
    }

    #[test]
    fn egress_delay_dominated_by_wire_time_at_low_rate() {
        let fast = Linecard::new(0, ProtocolKind::Ethernet, 10e9);
        let slow = Linecard::new(1, ProtocolKind::Ethernet, 1e9);
        let d_fast = fast.egress_delay(1500);
        let d_slow = slow.egress_delay(1500);
        assert!(d_slow > d_fast);
        // Wire time at 1G for a 1518B frame is ~12.1 us; pipeline adds <1 us.
        assert!((d_slow - 1518.0 * 8.0 / 1e9).abs() < 1e-6);
    }

    #[test]
    fn component_health_is_settable() {
        let mut lc = Linecard::new(0, ProtocolKind::Atm, 2.5e9);
        lc.components.set(ComponentKind::Lfe, Health::Failed);
        assert!(!lc.components.operational_standalone());
    }

    #[test]
    fn per_port_piu_failures_aggregate() {
        let mut lc = Linecard::with_ports(0, ProtocolKind::Ethernet, 10e9, 4);
        assert_eq!(lc.ports, 4);
        assert_eq!(lc.piu_loss_fraction(), 0.0);
        lc.fail_piu_port();
        assert_eq!(lc.piu_loss_fraction(), 0.25);
        assert_eq!(lc.components.piu, Health::Healthy, "3 ports still up");
        for _ in 0..3 {
            lc.fail_piu_port();
        }
        assert_eq!(lc.piu_loss_fraction(), 1.0);
        assert_eq!(lc.components.piu, Health::Failed, "all ports gone");
        // Extra failures saturate.
        lc.fail_piu_port();
        assert_eq!(lc.piu_failed_ports, 4);
        // Hot swap restores everything.
        lc.repair_all();
        assert_eq!(lc.piu_failed_ports, 0);
        assert!(lc.components.all_healthy());
    }

    #[test]
    fn single_port_card_piu_failure_is_total() {
        let mut lc = Linecard::new(0, ProtocolKind::Pos, 10e9);
        lc.fail_piu_port();
        assert_eq!(lc.components.piu, Health::Failed);
        assert_eq!(lc.piu_loss_fraction(), 1.0);
    }
}
