//! Offered/delivered/drop accounting for router simulations.

use dra_des::stats::{LogHistogram, TimeWeighted, Welford};
use std::fmt;

/// Shared bucket layout for every delivered-latency histogram
/// (per-linecard, per-path, and telemetry lifecycle decompositions),
/// so shard histograms merge without re-bucketing: 100 ns .. 10 ms in
/// 100 logarithmic buckets.
pub const LATENCY_HIST_LO: f64 = 100e-9;
/// Upper bound of the shared latency bucket layout.
pub const LATENCY_HIST_HI: f64 = 10e-3;
/// Bucket count of the shared latency bucket layout.
pub const LATENCY_HIST_BUCKETS: usize = 100;

/// A fresh histogram with the shared latency layout.
pub fn latency_histogram() -> LogHistogram {
    LogHistogram::new(LATENCY_HIST_LO, LATENCY_HIST_HI, LATENCY_HIST_BUCKETS)
}

/// Why a packet (or its cells) never made it out of the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropCause {
    /// Ingress linecard unable to accept (component failure, no coverage).
    IngressDown,
    /// Egress linecard unable to transmit (component failure, no coverage).
    EgressDown,
    /// Virtual output queue overflow at the ingress.
    VoqOverflow,
    /// The switching fabric had no operational plane.
    FabricDown,
    /// Reassembly gave up on a partial packet (lost cells upstream).
    ReassemblyTimeout,
    /// No route in the FIB for the destination.
    NoRoute,
    /// DRA only: the EIB had insufficient promised bandwidth
    /// (the B_prom scale-back of §4 realized as drops).
    EibOversubscribed,
    /// DRA only: no eligible covering linecard (e.g. no healthy LC of
    /// the same protocol for a PDLU failure).
    NoCoverage,
}

impl DropCause {
    /// Every cause, for table printing.
    pub const ALL: [DropCause; 8] = [
        DropCause::IngressDown,
        DropCause::EgressDown,
        DropCause::VoqOverflow,
        DropCause::FabricDown,
        DropCause::ReassemblyTimeout,
        DropCause::NoRoute,
        DropCause::EibOversubscribed,
        DropCause::NoCoverage,
    ];

    /// Position of this cause in [`DropCause::ALL`] (also the stable
    /// index used by telemetry drop events and campaign artifacts).
    pub const fn index(self) -> usize {
        match self {
            DropCause::IngressDown => 0,
            DropCause::EgressDown => 1,
            DropCause::VoqOverflow => 2,
            DropCause::FabricDown => 3,
            DropCause::ReassemblyTimeout => 4,
            DropCause::NoRoute => 5,
            DropCause::EibOversubscribed => 6,
            DropCause::NoCoverage => 7,
        }
    }

    /// Stable lowercase name (the `Display` form).
    pub const fn name(self) -> &'static str {
        match self {
            DropCause::IngressDown => "ingress-down",
            DropCause::EgressDown => "egress-down",
            DropCause::VoqOverflow => "voq-overflow",
            DropCause::FabricDown => "fabric-down",
            DropCause::ReassemblyTimeout => "reassembly-timeout",
            DropCause::NoRoute => "no-route",
            DropCause::EibOversubscribed => "eib-oversubscribed",
            DropCause::NoCoverage => "no-coverage",
        }
    }
}

/// Telemetry hook for a dropped packet: records the drop in the
/// thread-local telemetry hub when the `telemetry` feature is on and
/// compiles to nothing otherwise. Shared by the BDR and DRA models so
/// every drop site reports the same event shape.
#[inline]
pub fn note_drop(_packet: dra_net::packet::PacketId, _cause: DropCause, _lc: u16) {
    #[cfg(feature = "telemetry")]
    dra_telemetry::packet_dropped(_packet.0, _cause.index() as u32, _lc as u32, _cause.name());
}

impl fmt::Display for DropCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Counters for one linecard.
#[derive(Debug, Clone)]
pub struct LcMetrics {
    /// Packets offered by the attached links.
    pub offered_packets: u64,
    /// Bytes offered by the attached links.
    pub offered_bytes: u64,
    /// Packets fully delivered out the egress port.
    pub delivered_packets: u64,
    /// Bytes fully delivered.
    pub delivered_bytes: u64,
    /// Packets delivered *for this LC* via the EIB coverage path.
    pub covered_packets: u64,
    /// Packets delivered whose *ingress* was this LC. The BDR model
    /// attributes `delivered_packets` to the egress card; this counter
    /// is always ingress-attributed, so per-linecard conservation
    /// (`offered == ingress_delivered + Σ drops`) holds on both
    /// architectures.
    pub ingress_delivered: u64,
    /// Drop counters indexed by [`DropCause`].
    drops: [u64; 8],
    dropped_bytes: [u64; 8],
    /// End-to-end latency of delivered packets (seconds).
    pub latency: Welford,
    /// Bucketed latency distribution of the same deliveries, in the
    /// shared [`latency_histogram`] layout; unlike the scalar
    /// [`Welford`] it yields p50/p99 and merges exactly across shards.
    pub latency_hist: LogHistogram,
    /// 1.0 while this LC can deliver service, 0.0 while it cannot.
    pub availability: TimeWeighted,
}

impl LcMetrics {
    /// Fresh counters starting at time zero, available.
    pub fn new() -> Self {
        LcMetrics {
            offered_packets: 0,
            offered_bytes: 0,
            delivered_packets: 0,
            delivered_bytes: 0,
            covered_packets: 0,
            ingress_delivered: 0,
            drops: [0; 8],
            dropped_bytes: [0; 8],
            latency: Welford::new(),
            latency_hist: latency_histogram(),
            availability: TimeWeighted::new(0.0, 1.0),
        }
    }

    /// Record an offered packet.
    pub fn offer(&mut self, bytes: u32) {
        self.offered_packets += 1;
        self.offered_bytes += bytes as u64;
    }

    /// Record a delivery with its latency.
    pub fn deliver(&mut self, bytes: u32, latency_s: f64) {
        self.delivered_packets += 1;
        self.delivered_bytes += bytes as u64;
        self.latency.push(latency_s);
        self.latency_hist.record(latency_s);
    }

    /// Record a drop.
    pub fn drop_packet(&mut self, cause: DropCause, bytes: u32) {
        self.drops[cause.index()] += 1;
        self.dropped_bytes[cause.index()] += bytes as u64;
    }

    /// Packets dropped for a given cause.
    pub fn drops(&self, cause: DropCause) -> u64 {
        self.drops[cause.index()]
    }

    /// Bytes dropped for a given cause.
    pub fn dropped_bytes(&self, cause: DropCause) -> u64 {
        self.dropped_bytes[cause.index()]
    }

    /// Total packets dropped, any cause.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// Delivered / offered packet ratio (1.0 when nothing offered).
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered_packets == 0 {
            1.0
        } else {
            self.delivered_packets as f64 / self.offered_packets as f64
        }
    }

    /// Delivered / offered byte ratio (goodput fraction).
    pub fn byte_delivery_ratio(&self) -> f64 {
        if self.offered_bytes == 0 {
            1.0
        } else {
            self.delivered_bytes as f64 / self.offered_bytes as f64
        }
    }
}

impl Default for LcMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Metrics for the whole router.
#[derive(Debug, Clone, Default)]
pub struct RouterMetrics {
    /// One entry per linecard.
    pub lcs: Vec<LcMetrics>,
    /// Packets carried over the EIB (DRA only).
    pub eib_packets: u64,
    /// Bytes carried over the EIB (DRA only).
    pub eib_bytes: u64,
    /// Control packets exchanged over the EIB control lines.
    pub eib_control_packets: u64,
    /// CSMA/CD collisions observed on the control lines.
    pub eib_collisions: u64,
}

impl RouterMetrics {
    /// Metrics for `n` linecards.
    pub fn new(n: usize) -> Self {
        RouterMetrics {
            lcs: (0..n).map(|_| LcMetrics::new()).collect(),
            ..Default::default()
        }
    }

    /// Aggregate delivered bytes across all linecards.
    pub fn total_delivered_bytes(&self) -> u64 {
        self.lcs.iter().map(|m| m.delivered_bytes).sum()
    }

    /// Aggregate offered bytes across all linecards.
    pub fn total_offered_bytes(&self) -> u64 {
        self.lcs.iter().map(|m| m.offered_bytes).sum()
    }

    /// Aggregate drop count for one cause.
    pub fn total_drops(&self, cause: DropCause) -> u64 {
        self.lcs.iter().map(|m| m.drops(cause)).sum()
    }

    /// Delivered-latency histogram merged across all linecards, for
    /// router-wide p50/p99 reporting.
    pub fn latency_hist_total(&self) -> LogHistogram {
        let mut total = latency_histogram();
        for lc in &self.lcs {
            total.merge(&lc.latency_hist);
        }
        total
    }

    /// Router-wide byte delivery ratio.
    pub fn byte_delivery_ratio(&self) -> f64 {
        let offered = self.total_offered_bytes();
        if offered == 0 {
            1.0
        } else {
            self.total_delivered_bytes() as f64 / offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offer_deliver_drop_accounting() {
        let mut m = LcMetrics::new();
        m.offer(100);
        m.offer(200);
        m.deliver(100, 1e-5);
        m.drop_packet(DropCause::VoqOverflow, 200);
        assert_eq!(m.offered_packets, 2);
        assert_eq!(m.offered_bytes, 300);
        assert_eq!(m.delivered_packets, 1);
        assert_eq!(m.drops(DropCause::VoqOverflow), 1);
        assert_eq!(m.dropped_bytes(DropCause::VoqOverflow), 200);
        assert_eq!(m.total_drops(), 1);
        assert_eq!(m.delivery_ratio(), 0.5);
        assert!((m.byte_delivery_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.latency.count(), 1);
    }

    #[test]
    fn empty_metrics_ratios_are_one() {
        let m = LcMetrics::new();
        assert_eq!(m.delivery_ratio(), 1.0);
        assert_eq!(m.byte_delivery_ratio(), 1.0);
        assert_eq!(m.total_drops(), 0);
    }

    #[test]
    fn router_aggregation() {
        let mut r = RouterMetrics::new(3);
        r.lcs[0].offer(100);
        r.lcs[0].deliver(100, 1e-6);
        r.lcs[1].offer(50);
        r.lcs[1].drop_packet(DropCause::IngressDown, 50);
        assert_eq!(r.total_offered_bytes(), 150);
        assert_eq!(r.total_delivered_bytes(), 100);
        assert_eq!(r.total_drops(DropCause::IngressDown), 1);
        assert!((r.byte_delivery_ratio() - 100.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn availability_signal_integrates() {
        let mut m = LcMetrics::new();
        m.availability.update(10.0, 0.0); // fails at t=10
        m.availability.update(15.0, 1.0); // repaired at t=15
        let a = m.availability.average(20.0);
        assert!((a - 0.75).abs() < 1e-12);
    }

    #[test]
    fn latency_histogram_tracks_deliveries_and_merges() {
        let mut r = RouterMetrics::new(2);
        r.lcs[0].deliver(100, 5e-6);
        r.lcs[0].deliver(100, 5e-6);
        r.lcs[1].deliver(100, 2e-3);
        let total = r.latency_hist_total();
        assert_eq!(total.count(), 3);
        // Two of three observations sit near 5 µs, so the median does.
        let p50 = total.quantile(0.5);
        assert!((1e-6..1e-5).contains(&p50), "p50 = {p50}");
        let p99 = total.quantile(0.99);
        assert!(p99 > 1e-3, "p99 = {p99}");
    }

    #[test]
    fn all_drop_causes_have_distinct_slots_and_names() {
        use std::collections::HashSet;
        let idx: HashSet<usize> = DropCause::ALL.iter().map(|c| c.index()).collect();
        assert_eq!(idx.len(), DropCause::ALL.len());
        let names: HashSet<String> = DropCause::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(names.len(), DropCause::ALL.len());
    }
}
