//! The route processor (RP) and the maintenance functions of the
//! internal bus (Figure 1 of the paper).
//!
//! The RP "runs the applications and protocols supported by the router"
//! and distributes copies of the routing table to the local forwarding
//! engine in each linecard; the internal bus additionally handles
//! discovery of system cards at startup and collection of maintenance
//! information. This module models those control-plane functions:
//! a versioned RIB with incremental update distribution, card
//! discovery, and health polling.

use crate::components::LcComponents;
use crate::linecard::Linecard;
use dra_net::addr::Ipv4Prefix;
use dra_net::fib::Fib;
use dra_net::protocol::ProtocolKind;
use std::collections::HashMap;

/// One routing-table change, as distributed to linecards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RouteUpdate {
    /// Install (or replace) a route.
    Announce(Ipv4Prefix, u16),
    /// Remove a route.
    Withdraw(Ipv4Prefix),
}

/// The route processor: master RIB plus a bounded update log for
/// incremental distribution.
#[derive(Debug, Default)]
pub struct RouteProcessor {
    rib: HashMap<Ipv4Prefix, u16>,
    /// Updates since `log_base_version`, oldest first.
    log: Vec<RouteUpdate>,
    log_base_version: u64,
    version: u64,
}

impl RouteProcessor {
    /// An RP with an empty RIB at version 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current RIB version (increments on every change).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of routes in the master RIB.
    pub fn route_count(&self) -> usize {
        self.rib.len()
    }

    /// Announce a route; returns the replaced next hop, if any.
    pub fn announce(&mut self, prefix: Ipv4Prefix, next_hop: u16) -> Option<u16> {
        let old = self.rib.insert(prefix, next_hop);
        self.log.push(RouteUpdate::Announce(prefix, next_hop));
        self.version += 1;
        old
    }

    /// Withdraw a route; returns its next hop if it existed. A
    /// withdraw of an absent prefix is a no-op (version unchanged),
    /// matching how a RIB treats redundant withdrawals.
    pub fn withdraw(&mut self, prefix: Ipv4Prefix) -> Option<u16> {
        let old = self.rib.remove(&prefix)?;
        self.log.push(RouteUpdate::Withdraw(prefix));
        self.version += 1;
        Some(old)
    }

    /// Drop log entries older than the last `keep` updates (cards that
    /// fell further behind will need a full download).
    pub fn compact_log(&mut self, keep: usize) {
        if self.log.len() > keep {
            let drop = self.log.len() - keep;
            self.log.drain(..drop);
            self.log_base_version += drop as u64;
        }
    }

    /// Synchronize a linecard FIB from `from_version` to the current
    /// version. Uses the incremental log when possible, otherwise a
    /// full download (clear + reinstall). Returns the new version the
    /// card should record.
    pub fn sync_fib(&self, fib: &mut dyn Fib, from_version: u64) -> u64 {
        if from_version == self.version {
            return self.version;
        }
        if from_version >= self.log_base_version && from_version <= self.version {
            let start = (from_version - self.log_base_version) as usize;
            for update in &self.log[start..] {
                match *update {
                    RouteUpdate::Announce(p, nh) => {
                        fib.insert(p, nh);
                    }
                    RouteUpdate::Withdraw(p) => {
                        fib.remove(p);
                    }
                }
            }
        } else {
            // Too far behind: full download. The paper's RP ships the
            // whole table; we emulate by withdraw-all + reinstall.
            // (FIB implementations have no clear(); withdrawing every
            // installed prefix is equivalent and exercises removal.)
            let routes: Vec<(Ipv4Prefix, u16)> = self.rib.iter().map(|(&p, &nh)| (p, nh)).collect();
            // Remove stale state the card may hold that the RIB lacks
            // is impossible to see from here; the documented contract
            // is that full downloads start from an empty FIB.
            for (p, nh) in routes {
                fib.insert(p, nh);
            }
        }
        self.version
    }

    /// Full table download into a fresh FIB (startup).
    pub fn distribute(&self, linecards: &mut [Linecard]) {
        for lc in linecards {
            for (&p, &nh) in &self.rib {
                lc.fib.insert(p, nh);
            }
        }
    }
}

/// A discovered card, as the RP sees it over the internal bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LcDescriptor {
    /// Slot / linecard index.
    pub id: u16,
    /// Protocol personality of its PDLU.
    pub protocol: ProtocolKind,
    /// Configured port rate.
    pub port_rate_bps: f64,
}

/// Discovery of system cards at startup (internal-bus function 1).
pub fn discover(linecards: &[Linecard]) -> Vec<LcDescriptor> {
    linecards
        .iter()
        .map(|lc| LcDescriptor {
            id: lc.id,
            protocol: lc.protocol,
            port_rate_bps: lc.port_rate_bps,
        })
        .collect()
}

/// Maintenance poll: the health of every card as seen over the
/// internal bus (function 2). In DRA this same information rides the
/// EIB's processing tier.
pub fn poll_health(linecards: &[Linecard]) -> Vec<(u16, LcComponents)> {
    linecards.iter().map(|lc| (lc.id, lc.components)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_net::addr::Ipv4Addr;
    use dra_net::fib::TrieFib;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn announce_withdraw_versioning() {
        let mut rp = RouteProcessor::new();
        assert_eq!(rp.version(), 0);
        assert_eq!(rp.announce(pfx("10.0.0.0/8"), 1), None);
        assert_eq!(rp.version(), 1);
        assert_eq!(rp.announce(pfx("10.0.0.0/8"), 2), Some(1));
        assert_eq!(rp.version(), 2);
        assert_eq!(rp.withdraw(pfx("10.0.0.0/8")), Some(2));
        assert_eq!(rp.version(), 3);
        assert_eq!(rp.withdraw(pfx("10.0.0.0/8")), None);
        assert_eq!(rp.version(), 3, "redundant withdraw is a no-op");
        assert_eq!(rp.route_count(), 0);
    }

    #[test]
    fn incremental_sync_applies_the_tail() {
        let mut rp = RouteProcessor::new();
        rp.announce(pfx("10.0.0.0/8"), 1);
        let mut fib = TrieFib::new();
        let v1 = rp.sync_fib(&mut fib, 0);
        assert_eq!(v1, 1);
        assert_eq!(fib.lookup(Ipv4Addr::from_octets(10, 1, 1, 1)), Some(1));

        rp.announce(pfx("10.1.0.0/16"), 2);
        rp.withdraw(pfx("10.0.0.0/8"));
        let v2 = rp.sync_fib(&mut fib, v1);
        assert_eq!(v2, 3);
        assert_eq!(fib.lookup(Ipv4Addr::from_octets(10, 1, 1, 1)), Some(2));
        assert_eq!(fib.lookup(Ipv4Addr::from_octets(10, 9, 1, 1)), None);
        assert_eq!(fib.len(), 1);
    }

    #[test]
    fn sync_at_current_version_is_a_noop() {
        let mut rp = RouteProcessor::new();
        rp.announce(pfx("10.0.0.0/8"), 1);
        let mut fib = TrieFib::new();
        let v = rp.sync_fib(&mut fib, 0);
        let before = fib.len();
        assert_eq!(rp.sync_fib(&mut fib, v), v);
        assert_eq!(fib.len(), before);
    }

    #[test]
    fn compaction_forces_full_download() {
        let mut rp = RouteProcessor::new();
        for i in 0..20u16 {
            rp.announce(
                Ipv4Prefix::new(Ipv4Addr::from_octets(10, i as u8, 0, 0), 16),
                i,
            );
        }
        rp.compact_log(5);
        // A card at version 2 is behind the log base (15): full sync.
        let mut fib = TrieFib::new();
        let v = rp.sync_fib(&mut fib, 2);
        assert_eq!(v, 20);
        assert_eq!(fib.len(), 20);
        for i in 0..20u16 {
            assert_eq!(
                fib.lookup(Ipv4Addr::from_octets(10, i as u8, 3, 4)),
                Some(i)
            );
        }
    }

    #[test]
    fn incremental_equals_full_for_random_histories() {
        // Two cards: one syncing after every change, one once at the
        // end via full download; their FIBs must answer identically.
        let mut rp = RouteProcessor::new();
        let mut hot = TrieFib::new();
        let mut hot_v = 0;
        let mut s = 0x5EED_u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..300 {
            let octet = (next() % 32) as u8;
            let p = Ipv4Prefix::new(Ipv4Addr::from_octets(10, octet, 0, 0), 16);
            if next() % 3 == 0 {
                rp.withdraw(p);
            } else {
                rp.announce(p, (next() % 8) as u16);
            }
            hot_v = rp.sync_fib(&mut hot, hot_v);
        }
        let mut cold = TrieFib::new();
        rp.sync_fib(&mut cold, 0);
        assert_eq!(hot.len(), cold.len());
        for octet in 0..32u8 {
            let a = Ipv4Addr::from_octets(10, octet, 1, 1);
            assert_eq!(hot.lookup(a), cold.lookup(a), "octet {octet}");
        }
    }

    #[test]
    fn discovery_and_health_polling() {
        use crate::components::{ComponentKind, Health};
        let mut cards = vec![
            Linecard::new(0, ProtocolKind::Ethernet, 10e9),
            Linecard::new(1, ProtocolKind::Atm, 2.5e9),
        ];
        let found = discover(&cards);
        assert_eq!(found.len(), 2);
        assert_eq!(found[1].protocol, ProtocolKind::Atm);
        assert_eq!(found[1].port_rate_bps, 2.5e9);

        cards[0].components.set(ComponentKind::Lfe, Health::Failed);
        let health = poll_health(&cards);
        assert_eq!(health[0].1.lfe, Health::Failed);
        assert!(health[1].1.all_healthy());
    }

    #[test]
    fn distribute_installs_everything_everywhere() {
        let mut rp = RouteProcessor::new();
        rp.announce(pfx("10.0.0.0/16"), 0);
        rp.announce(pfx("10.1.0.0/16"), 1);
        let mut cards = vec![
            Linecard::new(0, ProtocolKind::Ethernet, 10e9),
            Linecard::new(1, ProtocolKind::Ethernet, 10e9),
        ];
        rp.distribute(&mut cards);
        for lc in &cards {
            assert_eq!(lc.fib.len(), 2);
            assert_eq!(lc.fib.lookup(Ipv4Addr::from_octets(10, 1, 2, 3)), Some(1));
        }
    }
}
