//! Proof that the steady-state simulation hot path stays off the heap
//! — including every telemetry hook site.
//!
//! Telemetry instrumentation (the `telemetry` cargo feature) promises
//! to cost ~nothing when compiled out and to stay allocation-free at
//! the hook sites even when compiled in but not enabled. CI runs the
//! test suite in both feature states, so this one test pins both
//! claims: after a warmup that grows every table to steady state, a
//! measurement window of the full BDR pipeline (arrivals, lookups,
//! VOQs, iSLIP, reassembly, delivery accounting) must perform
//! essentially zero heap allocations per event.
//!
//! Lives in its own integration-test binary because
//! `#[global_allocator]` is per-binary (same pattern as
//! `dra-net/tests/lookup_batch_noalloc.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dra_router::bdr::{BdrConfig, BdrRouter};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_simulation_is_allocation_free() {
    let cfg = BdrConfig {
        n_lcs: 6,
        load: 0.5,
        ..BdrConfig::default()
    };
    let mut sim = BdrRouter::simulation(cfg, 0xA110C);

    // Warmup: let the calendar queue, VOQ rings, reassembly slot
    // table, and in-flight map grow to their steady-state footprint.
    sim.run_until(5e-3);

    let events_before = sim.events_processed();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    sim.run_until(15e-3);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    let events = sim.events_processed() - events_before;

    assert!(events > 100_000, "window too small to be meaningful");
    let allocs = after - before;
    // Rare residual growth (a hash-map rehash, a calendar bucket that
    // first fills in this window) is tolerated; per-event allocation
    // is not. Observed: 0 allocations over ~500k events.
    assert!(
        (allocs as f64) < (events as f64) / 10_000.0,
        "steady-state hot path allocated {allocs} times over {events} events"
    );
    assert!(
        sim.model().metrics.total_delivered_bytes() > 0,
        "window delivered nothing"
    );
}
