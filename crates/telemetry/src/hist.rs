//! A compact log-spaced histogram for the metrics registry.
//!
//! This is a deliberate (documented) twin of
//! `dra_des::stats::LogHistogram`: the telemetry crate must stay
//! dependency-free so `des` itself can emit telemetry, which rules out
//! reusing the des type. Bucketing, quantile semantics, and merge
//! behaviour match the des implementation exactly — counts are exact
//! integers, so sharded merges reproduce sequential quantiles
//! bit-for-bit.

/// Log-spaced bucket counts over `[lo, hi)` with under/overflow rails.
#[derive(Debug, Clone)]
pub struct CompactHist {
    lo: f64,
    ratio: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl CompactHist {
    /// Buckets spanning `[lo, hi)` with `n` logarithmic divisions.
    ///
    /// # Panics
    /// Panics unless `0 < lo < hi` and `n > 0`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && n > 0, "CompactHist: bad params");
        CompactHist {
            lo,
            ratio: (hi / lo).powf(1.0 / n as f64),
            counts: vec![0; n],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x / self.lo).ln() / self.ratio.ln()).floor() as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Total observations, including under/overflow.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Count below the bottom bucket.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations that exceeded the top bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile: the geometric midpoint of the bucket
    /// containing quantile `q` (`lo` if it lands in underflow, `+inf`
    /// if it lands in overflow, NaN when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return f64::NAN;
        }
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut acc = self.underflow;
        if acc >= target && self.underflow > 0 {
            return self.lo;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                let lo = self.lo * self.ratio.powi(i as i32);
                return lo * self.ratio.sqrt();
            }
        }
        f64::INFINITY
    }

    /// Merge another histogram into this one (worker shards).
    ///
    /// # Panics
    /// Panics unless both were built with the same `(lo, hi, n)`.
    pub fn merge(&mut self, other: &CompactHist) {
        assert!(
            self.lo == other.lo
                && self.ratio == other.ratio
                && self.counts.len() == other.counts.len(),
            "CompactHist::merge: bucket layouts differ"
        );
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Reset all counts, keeping the bucket layout.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.underflow = 0;
        self.overflow = 0;
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_equals_sequential() {
        let mut sequential = CompactHist::new(1e-9, 1.0, 90);
        let mut a = CompactHist::new(1e-9, 1.0, 90);
        let mut b = CompactHist::new(1e-9, 1.0, 90);
        for i in 1..500u32 {
            let x = i as f64 * 3.7e-6;
            sequential.record(x);
            if i % 3 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), sequential.count());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), sequential.quantile(q));
        }
    }

    #[test]
    fn rails() {
        let mut h = CompactHist::new(1.0, 10.0, 4);
        h.record(0.5);
        h.record(100.0);
        h.record(3.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 3);
        assert!(h.quantile(1.0).is_infinite());
        h.clear();
        assert_eq!(h.count(), 0);
        assert!(h.quantile(0.5).is_nan());
    }
}
