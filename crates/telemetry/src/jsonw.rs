//! Minimal deterministic JSON emission helpers.
//!
//! The telemetry crate is dependency-free, so it carries its own tiny
//! writer. Number formatting matches `dra_campaign::json::write_num`
//! (integral values print as integers, everything else uses Rust's
//! shortest-roundtrip `{}`), so a snapshot parsed by the campaign's
//! JSON module and re-emitted is byte-stable.

use std::fmt::Write;

/// Append `x` formatted exactly like the campaign JSON writer.
pub fn num(out: &mut String, x: f64) {
    assert!(x.is_finite(), "JSON cannot represent {x}");
    if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
        write!(out, "{}", x as i64).expect("write to String");
    } else {
        write!(out, "{x}").expect("write to String");
    }
}

/// Append `x` as a JSON number (u64 counters; exact up to 2^53).
pub fn uint(out: &mut String, x: u64) {
    write!(out, "{x}").expect("write to String");
}

/// Append `s` as a JSON string literal with escaping.
pub fn str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_match_campaign_writer() {
        let mut s = String::new();
        num(&mut s, 3.0);
        s.push(' ');
        num(&mut s, -7.0);
        s.push(' ');
        num(&mut s, 0.12345678901234566);
        assert_eq!(s, "3 -7 0.12345678901234566");
        let mut q = String::new();
        str(&mut q, "a\"b\\c\nd");
        assert_eq!(q, "\"a\\\"b\\\\c\\nd\"");
    }
}
