//! # dra-telemetry
//!
//! Observability layer for the DRA reproduction: a handle-based
//! metrics registry, a flight recorder, deterministic packet-lifecycle
//! sampling, and exporters (`dra-telemetry/v1` JSON + Chrome
//! `trace_event` for Perfetto).
//!
//! ## Architecture
//!
//! All state lives in a **thread-local hub**. Campaign workers are
//! threads, so per-worker flight recorders and registries fall out of
//! thread locality with zero synchronization on the hot path; each
//! worker's [`Snapshot`] merges into one section afterwards
//! ([`Snapshot::merge`] is commutative + associative, so worker count
//! cannot change the merged bytes).
//!
//! Instrumented crates call the free functions in this module
//! (`counter_add`, `event`, `mark_*`, …) behind their `telemetry`
//! cargo feature. With the feature off the calls do not exist; with
//! the feature on but no [`enable`] call, every function is a
//! thread-local load + `None` check.
//!
//! ## Determinism contract
//!
//! Telemetry observes, never steers: no function here consumes
//! simulation RNG, schedules DES events, or feeds anything back into
//! the model. Sampling decisions are a pure hash of the packet id
//! ([`lifecycle::sample_hash`], the same SplitMix64 mixer
//! `dra-campaign` derives seeds from). A simulation therefore runs
//! bit-identically with telemetry enabled, and
//! `results/faceoff.json` stays byte-identical.

pub mod hist;
mod jsonw;
pub mod lifecycle;
pub mod netscope;
pub mod recorder;
pub mod snapshot;
pub mod trace;

pub use hist::CompactHist;
pub use lifecycle::{is_sampled, sample_hash};
pub use netscope::{
    EngineProfile, FlowSpan, ForensicEntry, ForensicKind, NetScopeSnapshot, NodeCounters, SpanKind,
    NET_DROP_CAUSES, NET_SNAPSHOT_FORMAT,
};
pub use recorder::{Event, EventKind, Ring};
pub use snapshot::{Anomaly, Snapshot, SNAPSHOT_FORMAT};
pub use trace::{chrome_trace_json, TraceEvent};

use lifecycle::Tracker;
use std::cell::RefCell;
use std::sync::Once;

/// Handle to a registered counter (index into the hub's table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub u32);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub u32);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(pub u32);

/// Well-known metric handles, pre-registered by [`enable`] so every
/// hot-path update is a single indexed add.
pub mod ids {
    use super::{CounterId, GaugeId, HistId};

    /// DES events executed.
    pub const DES_EVENTS: CounterId = CounterId(0);
    /// DES events scheduled.
    pub const DES_SCHEDULED: CounterId = CounterId(1);
    /// Packets offered at ingress.
    pub const ARRIVALS: CounterId = CounterId(2);
    /// FIB lookups performed (batched lookups count per packet).
    pub const FIB_LOOKUPS: CounterId = CounterId(3);
    /// Cells enqueued into VOQs.
    pub const VOQ_ENQUEUED_CELLS: CounterId = CounterId(4);
    /// iSLIP input→output grants issued.
    pub const ISLIP_GRANTS: CounterId = CounterId(5);
    /// Cells that crossed the fabric.
    pub const CELLS_SWITCHED: CounterId = CounterId(6);
    /// Packets completed by egress reassembly.
    pub const PACKETS_REASSEMBLED: CounterId = CounterId(7);
    /// Packets delivered.
    pub const DELIVERED: CounterId = CounterId(8);
    /// Packets dropped (all causes).
    pub const DROPPED: CounterId = CounterId(9);
    /// Packets that took at least one EIB hop.
    pub const EIB_DETOURS: CounterId = CounterId(10);
    /// EIB control-line transmission attempts.
    pub const EIB_CONTROL_ATTEMPTS: CounterId = CounterId(11);
    /// EIB control-line collisions.
    pub const EIB_COLLISIONS: CounterId = CounterId(12);

    /// Latest sim-time seen (gauges merge by max).
    pub const SIM_TIME: GaugeId = GaugeId(0);
    /// Peak DES queue length.
    pub const QUEUE_LEN: GaugeId = GaugeId(1);
    /// Peak calendar-queue bucket count.
    pub const CALENDAR_BUCKETS: GaugeId = GaugeId(2);

    /// Ingress processing + FIB lookup time.
    pub const H_LOOKUP: HistId = HistId(0);
    /// VOQ wait before the first fabric grant.
    pub const H_VOQ_WAIT: HistId = HistId(1);
    /// First-to-last-cell crossbar time.
    pub const H_SWITCHING: HistId = HistId(2);
    /// Accumulated EIB occupancy.
    pub const H_EIB: HistId = HistId(3);
    /// Last cell to delivery (reassembly + egress).
    pub const H_REASSEMBLY: HistId = HistId(4);
    /// End-to-end packet latency.
    pub const H_TOTAL: HistId = HistId(5);
}

const COUNTER_NAMES: [&str; 13] = [
    "des.events",
    "des.scheduled",
    "router.arrivals",
    "router.fib_lookups",
    "router.voq_enqueued_cells",
    "router.islip_grants",
    "router.cells_switched",
    "router.packets_reassembled",
    "router.delivered",
    "router.dropped",
    "eib.detours",
    "eib.control_attempts",
    "eib.collisions",
];

const GAUGE_NAMES: [&str; 3] = [
    "des.sim_time",
    "des.queue_len_peak",
    "des.calendar_buckets_peak",
];

const HIST_NAMES: [&str; 6] = [
    "latency.lookup",
    "latency.voq_wait",
    "latency.switching",
    "latency.eib",
    "latency.reassembly",
    "latency.total",
];

/// Latency histogram layout: 1 ns to 1 s, 9 buckets per decade.
const HIST_LO: f64 = 1e-9;
const HIST_HI: f64 = 1.0;
const HIST_BUCKETS: usize = 81;

/// Runtime configuration for [`enable`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Sample one packet in `sample_every` for lifecycle tracking
    /// (0 disables sampling; counters and the recorder still run).
    pub sample_every: u64,
    /// Flight-recorder window size in events.
    pub ring_capacity: usize,
    /// Collect Chrome trace events for sampled packets.
    pub collect_trace: bool,
    /// Hard cap on buffered trace events (excess is counted, not kept).
    pub trace_limit: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_every: 64,
            ring_capacity: 1024,
            collect_trace: false,
            trace_limit: 200_000,
        }
    }
}

struct Hub {
    now: f64,
    sample_every: u64,
    counters: Vec<u64>,
    gauges: Vec<f64>,
    hists: Vec<CompactHist>,
    extra_counter_names: Vec<&'static str>,
    ring: Ring,
    tracker: Tracker,
    anomaly: Option<Anomaly>,
    collect_trace: bool,
    trace: Vec<TraceEvent>,
    trace_limit: usize,
    trace_dropped: u64,
}

impl Hub {
    fn new(cfg: &Config) -> Self {
        Hub {
            now: 0.0,
            sample_every: cfg.sample_every,
            counters: vec![0; COUNTER_NAMES.len()],
            gauges: vec![0.0; GAUGE_NAMES.len()],
            hists: (0..HIST_NAMES.len())
                .map(|_| CompactHist::new(HIST_LO, HIST_HI, HIST_BUCKETS))
                .collect(),
            extra_counter_names: Vec::new(),
            ring: Ring::new(cfg.ring_capacity),
            tracker: Tracker::default(),
            anomaly: None,
            collect_trace: cfg.collect_trace,
            trace: Vec::new(),
            trace_limit: cfg.trace_limit,
            trace_dropped: 0,
        }
    }

    fn counter_name(&self, i: usize) -> &'static str {
        if i < COUNTER_NAMES.len() {
            COUNTER_NAMES[i]
        } else {
            self.extra_counter_names[i - COUNTER_NAMES.len()]
        }
    }

    fn push_trace(&mut self, ev: TraceEvent) {
        if self.trace.len() < self.trace_limit {
            self.trace.push(ev);
        } else {
            self.trace_dropped += 1;
        }
    }
}

thread_local! {
    static HUB: RefCell<Option<Hub>> = const { RefCell::new(None) };
}

static PANIC_HOOK: Once = Once::new();

/// Install the process-wide panic hook that dumps the panicking
/// thread's flight recorder to stderr before unwinding.
fn install_panic_hook() {
    PANIC_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // The hook runs on the panicking thread, so its
            // thread-local hub is exactly the right one to dump.
            // try_* everywhere: panicking inside a panic hook aborts.
            let _ = HUB.try_with(|cell| {
                if let Ok(hub) = cell.try_borrow() {
                    if let Some(hub) = hub.as_ref() {
                        if !hub.ring.is_empty() {
                            eprintln!("[dra-telemetry] panic — dumping {}", hub.ring.dump());
                        }
                    }
                }
            });
            prev(info);
        }));
    });
}

/// Turn telemetry on for this thread with a fresh hub.
pub fn enable(cfg: Config) {
    install_panic_hook();
    HUB.with(|cell| *cell.borrow_mut() = Some(Hub::new(&cfg)));
}

/// Turn telemetry off for this thread, discarding all state.
pub fn disable() {
    HUB.with(|cell| *cell.borrow_mut() = None);
}

/// Is telemetry enabled on this thread?
pub fn enabled() -> bool {
    HUB.with(|cell| cell.borrow().is_some())
}

#[inline]
fn with_hub<R>(f: impl FnOnce(&mut Hub) -> R) -> Option<R> {
    HUB.with(|cell| cell.borrow_mut().as_mut().map(f))
}

/// Register an additional counter (e.g. a bench-specific one).
/// Telemetry must be enabled; ids stay valid until [`disable`].
pub fn register_counter(name: &'static str) -> Option<CounterId> {
    with_hub(|h| {
        h.extra_counter_names.push(name);
        h.counters.push(0);
        CounterId((h.counters.len() - 1) as u32)
    })
}

/// Add `n` to a counter — a single indexed add on the hot path.
#[inline]
pub fn counter_add(id: CounterId, n: u64) {
    with_hub(|h| h.counters[id.0 as usize] += n);
}

/// Set a gauge to `v`.
#[inline]
pub fn gauge_set(id: GaugeId, v: f64) {
    with_hub(|h| h.gauges[id.0 as usize] = v);
}

/// Raise a gauge to `v` if `v` is larger (peak tracking).
#[inline]
pub fn gauge_max(id: GaugeId, v: f64) {
    with_hub(|h| {
        let g = &mut h.gauges[id.0 as usize];
        if v > *g {
            *g = v;
        }
    });
}

/// Record `x` into a histogram.
#[inline]
pub fn hist_record(id: HistId, x: f64) {
    with_hub(|h| h.hists[id.0 as usize].record(x));
}

/// The DES executive reports each delivered event here: advances the
/// hub's sim-time stamp (used by every subsequent [`event`]) and
/// updates the kernel counters/gauges.
#[inline]
pub fn des_event(now: f64, queue_len: usize, calendar_buckets: usize) {
    with_hub(|h| {
        h.now = now;
        h.counters[ids::DES_EVENTS.0 as usize] += 1;
        h.gauges[ids::SIM_TIME.0 as usize] = now;
        let ql = queue_len as f64;
        if ql > h.gauges[ids::QUEUE_LEN.0 as usize] {
            h.gauges[ids::QUEUE_LEN.0 as usize] = ql;
        }
        let cb = calendar_buckets as f64;
        if cb > h.gauges[ids::CALENDAR_BUCKETS.0 as usize] {
            h.gauges[ids::CALENDAR_BUCKETS.0 as usize] = cb;
        }
    });
}

/// The DES executive reports each scheduled event here.
#[inline]
pub fn des_scheduled() {
    with_hub(|h| h.counters[ids::DES_SCHEDULED.0 as usize] += 1);
}

/// Append a flight-recorder event stamped with the hub's current
/// sim-time.
#[inline]
pub fn event(kind: EventKind, packet: u64, a: u32, b: u32) {
    with_hub(|h| {
        let t = h.now;
        h.ring.push(Event {
            t,
            kind,
            a,
            b,
            packet,
        });
    });
}

/// Is this packet in the lifecycle sample? (false when disabled)
#[inline]
pub fn sampled(packet: u64) -> bool {
    with_hub(|h| is_sampled(packet, h.sample_every)).unwrap_or(false)
}

/// Begin lifecycle tracking for a packet if it is sampled.
#[inline]
pub fn track_arrival(packet: u64, ingress: u32, ip_bytes: u32) {
    with_hub(|h| {
        if is_sampled(packet, h.sample_every) {
            let now = h.now;
            h.tracker.begin(packet, ingress, ip_bytes, now);
        }
    });
}

/// Mark ingress processing + FIB lookup complete.
#[inline]
pub fn mark_lookup_done(packet: u64) {
    with_hub(|h| {
        let now = h.now;
        if let Some(t) = h.tracker.get_mut(packet) {
            t.lookup_done = now;
        }
    });
}

/// Mark the packet's cells entering a VOQ.
#[inline]
pub fn mark_voq_enqueue(packet: u64) {
    with_hub(|h| {
        let now = h.now;
        if let Some(t) = h.tracker.get_mut(packet) {
            t.voq_enqueued = now;
        }
    });
}

/// Mark one of the packet's cells crossing the fabric (first call
/// anchors the switching span, every call extends it).
#[inline]
pub fn mark_cell_switched(packet: u64) {
    with_hub(|h| {
        let now = h.now;
        if let Some(t) = h.tracker.get_mut(packet) {
            if !t.switch_start.is_finite() {
                t.switch_start = now;
            }
            t.switch_end = now;
        }
    });
}

/// Account an EIB hop occupying the bus for `dur` seconds starting at
/// `start`.
#[inline]
pub fn mark_eib_hop(packet: u64, start: f64, dur: f64) {
    with_hub(|h| {
        if let Some(t) = h.tracker.get_mut(packet) {
            if !t.eib_start.is_finite() {
                t.eib_start = start;
            }
            t.eib += dur;
        }
    });
}

/// Packet delivered: resolve its lifecycle into the latency
/// decomposition histograms and (optionally) Chrome trace spans.
pub fn finish_packet(packet: u64) {
    with_hub(|h| {
        let now = h.now;
        let Some((track, d)) = h.tracker.finish(packet, now) else {
            return;
        };
        h.hists[ids::H_LOOKUP.0 as usize].record(d.lookup);
        h.hists[ids::H_VOQ_WAIT.0 as usize].record(d.voq_wait);
        h.hists[ids::H_SWITCHING.0 as usize].record(d.switching);
        h.hists[ids::H_EIB.0 as usize].record(d.eib);
        h.hists[ids::H_REASSEMBLY.0 as usize].record(d.reassembly);
        h.hists[ids::H_TOTAL.0 as usize].record(d.total);
        if h.collect_trace {
            let pid = track.ingress;
            let tid = packet as u32;
            let us = 1e6;
            let span = |name, t0: f64, dur: f64| TraceEvent {
                name,
                ph: 'X',
                ts_us: t0 * us,
                dur_us: dur * us,
                pid,
                tid,
                packet,
                id: 0,
            };
            h.push_trace(span("packet", track.arrived, d.total));
            if d.lookup > 0.0 {
                h.push_trace(span("lookup", track.arrived, d.lookup));
            }
            if d.voq_wait > 0.0 {
                h.push_trace(span("voq-wait", track.voq_enqueued, d.voq_wait));
            }
            if d.switching > 0.0 {
                h.push_trace(span("switching", track.switch_start, d.switching));
            }
            if d.eib > 0.0 && track.eib_start.is_finite() {
                h.push_trace(span("eib", track.eib_start, d.eib));
            }
            if d.reassembly > 0.0 && track.switch_end.is_finite() {
                h.push_trace(span("reassembly", track.switch_end, d.reassembly));
            }
        }
    });
}

/// Packet dropped: recorder event, drop counter, lifecycle cleanup,
/// and an instant trace marker. `cause_name` should be the stable
/// `DropCause` name; `cause_index` its index.
pub fn packet_dropped(packet: u64, cause_index: u32, lc: u32, cause_name: &'static str) {
    with_hub(|h| {
        let t = h.now;
        h.counters[ids::DROPPED.0 as usize] += 1;
        h.ring.push(Event {
            t,
            kind: EventKind::Drop,
            a: cause_index,
            b: lc,
            packet,
        });
        h.tracker.drop_packet(packet);
        if h.collect_trace {
            h.push_trace(TraceEvent {
                name: drop_trace_name(cause_name),
                ph: 'i',
                ts_us: t * 1e6,
                dur_us: 0.0,
                pid: lc,
                tid: packet as u32,
                packet,
                id: 0,
            });
        }
    });
}

/// Map a `DropCause` name to a static trace label without allocating
/// per event.
fn drop_trace_name(cause_name: &str) -> &'static str {
    match cause_name {
        "ingress-down" => "drop:ingress-down",
        "egress-down" => "drop:egress-down",
        "fabric-down" => "drop:fabric-down",
        "voq-overflow" => "drop:voq-overflow",
        "reassembly-timeout" => "drop:reassembly-timeout",
        "no-route" => "drop:no-route",
        "eib-oversubscribed" => "drop:eib-oversubscribed",
        "no-coverage" => "drop:no-coverage",
        _ => "drop",
    }
}

/// Trip the anomaly trigger: the first call freezes a copy of the
/// flight-recorder window for the snapshot; later calls are no-ops.
pub fn anomaly(reason: &'static str) {
    with_hub(|h| {
        if h.anomaly.is_none() {
            h.anomaly = Some(Anomaly {
                reason: reason.to_string(),
                t: h.now,
                events: h.ring.recent().copied().collect(),
            });
        }
    });
}

/// Has the anomaly trigger tripped?
pub fn anomaly_tripped() -> bool {
    with_hub(|h| h.anomaly.is_some()).unwrap_or(false)
}

/// On-demand flight-recorder dump (None when disabled).
pub fn ring_dump() -> Option<String> {
    with_hub(|h| h.ring.dump())
}

/// Snapshot this thread's hub (None when disabled). The hub keeps
/// accumulating; callers that want per-cell snapshots re-[`enable`]
/// between cells.
pub fn snapshot() -> Option<Snapshot> {
    with_hub(|h| Snapshot {
        sample_every: h.sample_every,
        sampled_packets: h.tracker.sampled(),
        open_tracks: h.tracker.open() as u64,
        counters: h
            .counters
            .iter()
            .enumerate()
            .map(|(i, &v)| (h.counter_name(i), v))
            .collect(),
        gauges: GAUGE_NAMES
            .iter()
            .zip(&h.gauges)
            .map(|(&n, &v)| (n, v))
            .collect(),
        hists: HIST_NAMES
            .iter()
            .zip(&h.hists)
            .map(|(&n, h)| (n, h.clone()))
            .collect(),
        ring_appended: h.ring.appended(),
        ring_capacity: h.ring.capacity() as u64,
        anomaly: h.anomaly.clone(),
    })
}

/// Drain the buffered Chrome trace events (empty when disabled or
/// when trace collection is off).
pub fn take_trace_events() -> Vec<TraceEvent> {
    with_hub(|h| std::mem::take(&mut h.trace)).unwrap_or_default()
}

/// Trace events discarded after the buffer hit its cap.
pub fn trace_dropped() -> u64 {
    with_hub(|h| h.trace_dropped).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(collect_trace: bool) -> Config {
        Config {
            sample_every: 1,
            ring_capacity: 8,
            collect_trace,
            trace_limit: 100,
        }
    }

    #[test]
    fn disabled_is_inert() {
        disable();
        assert!(!enabled());
        counter_add(ids::ARRIVALS, 1);
        event(EventKind::Arrival, 1, 0, 0);
        assert!(snapshot().is_none());
        assert!(!sampled(0));
    }

    #[test]
    fn full_lifecycle_roundtrip() {
        enable(fresh(true));
        des_event(1.0, 3, 4);
        counter_add(ids::ARRIVALS, 1);
        track_arrival(42, 2, 1500);
        event(EventKind::Arrival, 42, 2, 1500);
        des_event(1.1, 2, 4);
        mark_lookup_done(42);
        mark_voq_enqueue(42);
        des_event(1.2, 2, 4);
        mark_cell_switched(42);
        des_event(1.3, 1, 4);
        mark_cell_switched(42);
        des_event(1.4, 0, 4);
        finish_packet(42);

        let snap = snapshot().expect("enabled");
        assert_eq!(snap.counters[ids::ARRIVALS.0 as usize].1, 1);
        assert_eq!(snap.counters[ids::DES_EVENTS.0 as usize].1, 5);
        assert_eq!(snap.sampled_packets, 1);
        assert_eq!(snap.open_tracks, 0);
        let (name, total) = &snap.hists[ids::H_TOTAL.0 as usize];
        assert_eq!(*name, "latency.total");
        assert_eq!(total.count(), 1);

        let trace = take_trace_events();
        assert!(trace.iter().any(|e| e.name == "packet"));
        assert!(trace.iter().any(|e| e.name == "switching"));
        disable();
    }

    #[test]
    fn anomaly_freezes_ring_window() {
        enable(fresh(false));
        for i in 0..20u64 {
            des_event(i as f64, 0, 0);
            event(EventKind::Arrival, i, 0, 0);
        }
        assert!(!anomaly_tripped());
        packet_dropped(19, 6, 0, "eib-oversubscribed");
        anomaly("first eib-oversubscribed drop");
        anomaly("second call must not overwrite");
        let snap = snapshot().unwrap();
        let a = snap.anomaly.expect("tripped");
        assert_eq!(a.reason, "first eib-oversubscribed drop");
        // Window = ring capacity (8): the drop plus the 7 most recent.
        assert_eq!(a.events.len(), 8);
        assert_eq!(a.events.last().unwrap().kind, EventKind::Drop);
        disable();
    }

    #[test]
    fn registered_counters_appear_in_snapshot() {
        enable(fresh(false));
        let id = register_counter("bench.iterations").unwrap();
        counter_add(id, 7);
        let snap = snapshot().unwrap();
        assert_eq!(*snap.counters.last().unwrap(), ("bench.iterations", 7));
        disable();
    }
}
