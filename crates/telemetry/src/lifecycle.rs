//! Deterministic 1-in-N packet lifecycle sampling.
//!
//! Whether a packet is sampled is a pure function of its id: one
//! SplitMix64 step (the same mixer `dra-campaign` builds its seed
//! derivation from — constants pinned by test) hashed against the
//! sampling modulus. No RNG stream is consumed and no event is
//! scheduled, so enabling sampling cannot perturb a simulation —
//! that is the determinism contract behind "`results/faceoff.json`
//! stays byte-identical with telemetry on".
//!
//! Sampled packets get a [`Track`] recording the sim-time at each
//! lifecycle boundary; on delivery the track resolves into a latency
//! decomposition (lookup / VOQ wait / switching / EIB / reassembly)
//! fed to the registry's histograms and, optionally, the Chrome trace
//! buffer.

use std::collections::HashMap;

/// One SplitMix64 output step — bit-identical to
/// `dra_campaign::seed::splitmix64` (pinned by `sampler_constants`).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Avalanche hash of a packet id used for sampling decisions.
#[inline]
pub fn sample_hash(packet: u64) -> u64 {
    let mut s = packet;
    splitmix64(&mut s)
}

/// Is `packet` in the 1-in-`every` sample? (`every = 0` disables.)
#[inline]
pub fn is_sampled(packet: u64, every: u64) -> bool {
    every != 0 && sample_hash(packet).is_multiple_of(every)
}

/// Sim-time marks over one sampled packet's life. Fields start NaN and
/// are filled as the packet moves; the decomposition only uses marks
/// that were actually set (an EIB-only DRA packet never gets fabric
/// marks, and vice versa).
#[derive(Debug, Clone, Copy)]
pub struct Track {
    /// Ingress linecard (for trace pid/tid assignment).
    pub ingress: u32,
    /// IP bytes (trace annotation).
    pub ip_bytes: u32,
    /// Arrival time.
    pub arrived: f64,
    /// Ingress processing + FIB lookup finished.
    pub lookup_done: f64,
    /// Cells entered the VOQ.
    pub voq_enqueued: f64,
    /// First cell granted across the fabric.
    pub switch_start: f64,
    /// Last cell so far across the fabric.
    pub switch_end: f64,
    /// Accumulated EIB occupancy (seconds), summed over hops.
    pub eib: f64,
    /// When the packet's first EIB hop began (trace span anchor).
    pub eib_start: f64,
}

impl Track {
    fn new(ingress: u32, ip_bytes: u32, now: f64) -> Self {
        Track {
            ingress,
            ip_bytes,
            arrived: now,
            lookup_done: f64::NAN,
            voq_enqueued: f64::NAN,
            switch_start: f64::NAN,
            switch_end: f64::NAN,
            eib: 0.0,
            eib_start: f64::NAN,
        }
    }
}

/// The five phases a delivered packet's latency decomposes into, plus
/// the end-to-end total. Index = histogram id in the registry.
#[derive(Debug, Clone, Copy)]
pub struct Decomposition {
    /// Ingress processing + FIB lookup.
    pub lookup: f64,
    /// Waiting in the VOQ for the first grant.
    pub voq_wait: f64,
    /// First to last cell across the crossbar.
    pub switching: f64,
    /// Total EIB occupancy.
    pub eib: f64,
    /// Last cell to delivery (egress SRU + egress processing).
    pub reassembly: f64,
    /// Arrival to delivery.
    pub total: f64,
}

/// Per-worker tracker of in-flight sampled packets.
#[derive(Debug, Default)]
pub struct Tracker {
    map: HashMap<u64, Track>,
    sampled: u64,
}

impl Tracker {
    /// Start tracking a sampled packet at its arrival.
    pub fn begin(&mut self, packet: u64, ingress: u32, ip_bytes: u32, now: f64) {
        self.sampled += 1;
        self.map.insert(packet, Track::new(ingress, ip_bytes, now));
    }

    /// Mutable access to a tracked packet (None when not sampled).
    #[inline]
    pub fn get_mut(&mut self, packet: u64) -> Option<&mut Track> {
        self.map.get_mut(&packet)
    }

    /// Resolve a delivered packet into its latency decomposition.
    ///
    /// Unset marks contribute zero to their phase, so partial paths
    /// (EIB-only detours, single-cell packets) still decompose; the
    /// five components plus residual always sum to `total`.
    pub fn finish(&mut self, packet: u64, now: f64) -> Option<(Track, Decomposition)> {
        let track = self.map.remove(&packet)?;
        let span = |a: f64, b: f64| {
            if a.is_finite() && b.is_finite() && b > a {
                b - a
            } else {
                0.0
            }
        };
        let decomp = Decomposition {
            lookup: span(track.arrived, track.lookup_done),
            voq_wait: span(track.voq_enqueued, track.switch_start),
            switching: span(track.switch_start, track.switch_end),
            eib: track.eib,
            reassembly: span(track.switch_end, now),
            total: span(track.arrived, now),
        };
        Some((track, decomp))
    }

    /// Stop tracking a dropped packet.
    pub fn drop_packet(&mut self, packet: u64) {
        self.map.remove(&packet);
    }

    /// Sampled packets seen so far (including in-flight and dropped).
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Packets still being tracked.
    pub fn open(&self) -> usize {
        self.map.len()
    }

    /// Forget all state.
    pub fn clear(&mut self) {
        self.map.clear();
        self.sampled = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The mixer must stay bit-identical to `dra_campaign::seed`'s
    /// SplitMix64 — these values are pinned against that
    /// implementation (see the feature-gated cross-check in
    /// dra-campaign).
    #[test]
    fn sampler_constants() {
        assert_eq!(sample_hash(0), 0xe220a8397b1dcdaf);
        assert_eq!(sample_hash(0xDEAD_BEEF), 0x4adfb90f68c9eb9b);
        // A realistic packet id: linecard 3's generator, sequence 12345.
        assert_eq!(sample_hash((3 << 48) | 12345), 0xa26ce1d02144332c);
    }

    #[test]
    fn sampling_rate_is_roughly_one_in_n() {
        let every = 64u64;
        let hits = (0..100_000u64).filter(|&p| is_sampled(p, every)).count();
        // Binomial(100k, 1/64): expect ~1562, allow ±25%.
        assert!((1170..=1950).contains(&hits), "hits={hits}");
        assert!(!is_sampled(1, 0), "every=0 must disable sampling");
    }

    #[test]
    fn decomposition_sums_to_total() {
        let mut tr = Tracker::default();
        tr.begin(42, 1, 1500, 1.0);
        let t = tr.get_mut(42).unwrap();
        t.lookup_done = 1.1;
        t.voq_enqueued = 1.1;
        t.switch_start = 1.3;
        t.switch_end = 1.5;
        t.eib = 0.0;
        let (_, d) = tr.finish(42, 1.6).unwrap();
        assert!((d.lookup - 0.1).abs() < 1e-12);
        assert!((d.voq_wait - 0.2).abs() < 1e-12);
        assert!((d.switching - 0.2).abs() < 1e-12);
        assert!((d.reassembly - 0.1).abs() < 1e-12);
        assert!((d.total - 0.6).abs() < 1e-12);
        assert_eq!(tr.open(), 0);
    }

    #[test]
    fn partial_paths_do_not_poison() {
        // EIB-only DRA packet: no fabric marks at all.
        let mut tr = Tracker::default();
        tr.begin(7, 0, 40, 2.0);
        tr.get_mut(7).unwrap().eib = 0.25;
        let (_, d) = tr.finish(7, 3.0).unwrap();
        assert_eq!(d.voq_wait, 0.0);
        assert_eq!(d.switching, 0.0);
        assert_eq!(d.eib, 0.25);
        assert_eq!(d.total, 1.0);
        // Dropped packets just vanish.
        tr.begin(8, 0, 40, 2.0);
        tr.drop_packet(8);
        assert!(tr.finish(8, 9.9).is_none());
    }
}
