//! Network-scope telemetry: per-router counters, multi-hop flow
//! spans, a fault-forensics ledger, and the PDES engine profile.
//!
//! The single-router [`Snapshot`](crate::Snapshot) stops at the
//! chassis boundary; this module is its network-of-routers sibling,
//! produced by `dra-topo` runs. One [`NetScopeSnapshot`] per
//! simulation cell, merged across replications and cells exactly like
//! worker snapshots.
//!
//! ## Determinism contract
//!
//! The snapshot splits into two sections with different guarantees:
//!
//! - **`deterministic`** — node counters, the forensics ledger, flow
//!   spans, and the frozen flight-recorder window. Everything here is
//!   derived from sim-time ordered data and must be byte-identical at
//!   any `--sim-threads` and any worker count. CI enforces this.
//! - **`profile`** — the PDES engine profile (wall-clock, barrier
//!   stalls, per-LP load). Wall-clock measurements are inherently
//!   non-deterministic; consumers must never diff this section.
//!
//! [`NetScopeSnapshot::merge`] is commutative and associative: list
//! sections merge by concatenate-then-canonical-sort (a multiset
//! union), counters by addition, the frozen window by earliest trip.

use crate::jsonw;
use crate::snapshot::{write_anomaly, Anomaly};

/// Version tag of the exported network-scope JSON document.
pub const NET_SNAPSHOT_FORMAT: &str = "dra-topo-telemetry/v1";

/// Number of network drop causes (`NetDropCause` has 8 variants; the
/// producer supplies the names so this crate stays model-agnostic).
pub const NET_DROP_CAUSES: usize = 8;

/// Per-router event counters, indexed by node id in
/// [`NetScopeSnapshot::nodes`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Packets that entered this router (host injection or link).
    pub transits: u64,
    /// Transits that needed fault-coverage spare capacity.
    pub covered: u64,
    /// Packets forwarded out a link.
    pub forwards: u64,
    /// Packets delivered to a host port here.
    pub delivered: u64,
    /// Scripted fault/repair actions applied at this router.
    pub actions: u64,
    /// Drops at this router, by `NetDropCause` index.
    pub drops: [u64; NET_DROP_CAUSES],
}

impl NodeCounters {
    /// Pairwise-add another node's counters into this one.
    pub fn add(&mut self, o: &NodeCounters) {
        self.transits += o.transits;
        self.covered += o.covered;
        self.forwards += o.forwards;
        self.delivered += o.delivered;
        self.actions += o.actions;
        for (d, od) in self.drops.iter_mut().zip(&o.drops) {
            *d += od;
        }
    }

    /// Total drops across all causes.
    pub fn dropped_total(&self) -> u64 {
        self.drops.iter().sum()
    }
}

/// What a [`FlowSpan`] represents on a router's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SpanKind {
    /// Time spent inside a router (transit + coverage + fabric).
    Transit = 0,
    /// Time on the wire between two routers (`aux` = egress port).
    Link = 1,
    /// Delivery to the destination host (instant; `t0 == t1`).
    Deliver = 2,
    /// Drop (instant; `aux` = `NetDropCause` index).
    Drop = 3,
}

impl SpanKind {
    /// Stable lowercase name used in exported JSON.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Transit => "transit",
            SpanKind::Link => "link",
            SpanKind::Deliver => "deliver",
            SpanKind::Drop => "drop",
        }
    }
}

/// One hop-resolved segment of a sampled packet's life, reconstructed
/// from the provenance chain / hop log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpan {
    /// Packet id.
    pub packet: u64,
    /// Flow the packet belongs to.
    pub flow: u32,
    /// Router the segment starts at.
    pub node: u32,
    /// Segment start, sim-time seconds.
    pub t0: f64,
    /// Segment end, sim-time seconds (`>= t0`).
    pub t1: f64,
    /// Segment kind.
    pub kind: SpanKind,
    /// Kind-specific payload (see [`SpanKind`]).
    pub aux: u32,
}

impl FlowSpan {
    /// Total canonical order (packet, then time, then discriminators):
    /// producers sort with this so a span list's bytes depend only on
    /// the span *multiset*, never on collection order.
    pub fn cmp_canonical(&self, o: &FlowSpan) -> std::cmp::Ordering {
        self.packet
            .cmp(&o.packet)
            .then(self.t0.total_cmp(&o.t0))
            .then(self.t1.total_cmp(&o.t1))
            .then(self.kind.cmp(&o.kind))
            .then(self.node.cmp(&o.node))
            .then(self.flow.cmp(&o.flow))
            .then(self.aux.cmp(&o.aux))
    }
}

/// What a [`ForensicEntry`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ForensicKind {
    /// A scripted `TopoFaultSpec` action fired (SRU kill, link cut,
    /// repair). `label` names it; `drops_at` is the cumulative
    /// per-cause drop census at that instant.
    Action = 0,
    /// A flow stopped delivering: its first drop after a delivery (or
    /// ever). `cause` is the `NetDropCause` index.
    FlowDown = 1,
    /// A flow resumed delivering after being down.
    FlowUp = 2,
}

impl ForensicKind {
    /// Stable lowercase name used in exported JSON.
    pub fn name(self) -> &'static str {
        match self {
            ForensicKind::Action => "action",
            ForensicKind::FlowDown => "flow_down",
            ForensicKind::FlowUp => "flow_up",
        }
    }
}

/// One entry of the fault-forensics ledger: a sim-time timeline
/// correlating scripted fault actions with per-flow availability
/// transitions and the drop census.
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicEntry {
    /// Sim-time of the event, seconds.
    pub t: f64,
    /// Entry kind.
    pub kind: ForensicKind,
    /// Flow id (`u32::MAX` for [`ForensicKind::Action`]).
    pub flow: u32,
    /// Drop-cause index for [`ForensicKind::FlowDown`], else `u32::MAX`.
    pub cause: u32,
    /// Action label (empty for flow transitions).
    pub label: String,
    /// Cumulative drops by cause at `t` (actions only; zeros otherwise).
    pub drops_at: [u64; NET_DROP_CAUSES],
}

impl ForensicEntry {
    /// Total canonical order (sim-time first) — see
    /// [`FlowSpan::cmp_canonical`].
    pub fn cmp_canonical(&self, o: &ForensicEntry) -> std::cmp::Ordering {
        self.t
            .total_cmp(&o.t)
            .then(self.kind.cmp(&o.kind))
            .then(self.flow.cmp(&o.flow))
            .then(self.cause.cmp(&o.cause))
            .then(self.label.cmp(&o.label))
            .then(self.drops_at.cmp(&o.drops_at))
    }
}

/// PDES engine profile: wall-clock and load measurements from the
/// windowed parallel runs. **Non-deterministic** — lives only in the
/// snapshot's `profile` section, never in `deterministic`.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineProfile {
    /// Parallel runs folded into this profile.
    pub runs: u64,
    /// Worker threads (max across runs).
    pub threads: u64,
    /// Barrier windows executed (sum across runs).
    pub windows: u64,
    /// Cross-LP messages exchanged (sum).
    pub cross_messages: u64,
    /// Wall-clock spent inside the windowed engine, nanoseconds (sum).
    pub wall_ns: u64,
    /// Wall-clock all threads spent stalled at barriers, ns (sum).
    pub barrier_wait_ns: u64,
    /// Windows in which at least one LP processed an event (sum).
    pub nonempty_windows: u64,
    /// Sum over windows of the busiest LP's event count — the serial
    /// critical path under perfect balance.
    pub window_max_events_sum: u64,
    /// Events processed per LP (pairwise-added; shorter runs extend
    /// with zeros, so positions only align within one topology).
    pub lp_events: Vec<u64>,
    /// Windows in which each LP processed at least one event.
    pub lp_busy_windows: Vec<u64>,
    /// Smallest per-LP lookahead seen, seconds.
    pub lookahead_min_s: f64,
    /// Largest per-LP lookahead seen, seconds.
    pub lookahead_max_s: f64,
    /// Sum of per-LP lookaheads (mean = sum / lps).
    pub lookahead_sum_s: f64,
    /// LP-lookahead samples behind the min/max/sum.
    pub lookahead_lps: u64,
}

impl Default for EngineProfile {
    fn default() -> Self {
        EngineProfile {
            runs: 0,
            threads: 0,
            windows: 0,
            cross_messages: 0,
            wall_ns: 0,
            barrier_wait_ns: 0,
            nonempty_windows: 0,
            window_max_events_sum: 0,
            lp_events: Vec::new(),
            lp_busy_windows: Vec::new(),
            lookahead_min_s: f64::INFINITY,
            lookahead_max_s: 0.0,
            lookahead_sum_s: 0.0,
            lookahead_lps: 0,
        }
    }
}

fn add_extend(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

impl EngineProfile {
    /// Fold another run's profile into this one.
    pub fn merge(&mut self, o: &EngineProfile) {
        self.runs += o.runs;
        self.threads = self.threads.max(o.threads);
        self.windows += o.windows;
        self.cross_messages += o.cross_messages;
        self.wall_ns += o.wall_ns;
        self.barrier_wait_ns += o.barrier_wait_ns;
        self.nonempty_windows += o.nonempty_windows;
        self.window_max_events_sum += o.window_max_events_sum;
        add_extend(&mut self.lp_events, &o.lp_events);
        add_extend(&mut self.lp_busy_windows, &o.lp_busy_windows);
        self.lookahead_min_s = self.lookahead_min_s.min(o.lookahead_min_s);
        self.lookahead_max_s = self.lookahead_max_s.max(o.lookahead_max_s);
        self.lookahead_sum_s += o.lookahead_sum_s;
        self.lookahead_lps += o.lookahead_lps;
    }

    /// Total events processed across all LPs.
    pub fn events_total(&self) -> u64 {
        self.lp_events.iter().sum()
    }

    /// Busiest LP's event count.
    pub fn lp_events_max(&self) -> u64 {
        self.lp_events.iter().copied().max().unwrap_or(0)
    }

    /// Load imbalance: max LP events over mean LP events (1.0 =
    /// perfectly balanced; 0.0 when no events were processed).
    pub fn load_imbalance(&self) -> f64 {
        let n = self.lp_events.len() as f64;
        let total = self.events_total() as f64;
        if n == 0.0 || total == 0.0 {
            return 0.0;
        }
        self.lp_events_max() as f64 / (total / n)
    }
}

/// Per-LP event counts serialized into JSON before truncation.
const LP_EVENTS_IN_JSON: usize = 256;

/// Flow spans serialized into JSON before truncation (the full list
/// stays available in the struct and feeds the Perfetto exporter).
const SPANS_IN_JSON: usize = 2048;

/// Mergeable network-scope snapshot of one (or many, after merging)
/// `dra-topo` simulation cells.
#[derive(Debug, Clone, Default)]
pub struct NetScopeSnapshot {
    /// Cells folded into this snapshot.
    pub cells_merged: u64,
    /// `NetDropCause` names, drop-index order (producer-supplied).
    pub drop_causes: Vec<&'static str>,
    /// Per-router counters, indexed by node id.
    pub nodes: Vec<NodeCounters>,
    /// Fault-forensics ledger, canonical sim-time order.
    pub forensics: Vec<ForensicEntry>,
    /// Hop-resolved spans of sampled packets, canonical order.
    pub spans: Vec<FlowSpan>,
    /// Flight-recorder window frozen by the first conservation-ledger
    /// violation (earliest trip wins across merges).
    pub frozen: Option<Anomaly>,
    /// PDES engine profile — **non-deterministic**, `None` for serial
    /// runs or when profiling was not requested.
    pub profile: Option<EngineProfile>,
}

impl NetScopeSnapshot {
    /// Merge another cell's snapshot into this one. Commutative and
    /// associative: byte-identical merged output at any worker count
    /// or LP partition.
    ///
    /// # Panics
    /// Panics if both snapshots name drop causes and the names differ
    /// (snapshots must come from the same build).
    pub fn merge(&mut self, other: &NetScopeSnapshot) {
        self.cells_merged += other.cells_merged;
        if self.drop_causes.is_empty() {
            self.drop_causes = other.drop_causes.clone();
        } else if !other.drop_causes.is_empty() {
            assert_eq!(
                self.drop_causes, other.drop_causes,
                "NetScopeSnapshot::merge: drop-cause registries differ"
            );
        }
        if self.nodes.len() < other.nodes.len() {
            self.nodes
                .resize(other.nodes.len(), NodeCounters::default());
        }
        for (n, on) in self.nodes.iter_mut().zip(&other.nodes) {
            n.add(on);
        }
        // Concatenate + canonical sort = multiset union: the result
        // depends only on the union of entries, never on merge order.
        self.forensics.extend(other.forensics.iter().cloned());
        self.forensics
            .sort_unstable_by(ForensicEntry::cmp_canonical);
        self.spans.extend(other.spans.iter().copied());
        self.spans.sort_unstable_by(FlowSpan::cmp_canonical);
        // Earliest frozen window wins; ties break on reason then size
        // so the choice is total (merge-order independent).
        let other_wins = match (&self.frozen, &other.frozen) {
            (_, None) => false,
            (None, Some(_)) => true,
            (Some(a), Some(b)) => {
                b.t.total_cmp(&a.t)
                    .then(b.reason.cmp(&a.reason))
                    .then(b.events.len().cmp(&a.events.len()))
                    .is_lt()
            }
        };
        if other_wins {
            self.frozen = other.frozen.clone();
        }
        match (&mut self.profile, &other.profile) {
            (Some(p), Some(op)) => p.merge(op),
            (None, Some(op)) => self.profile = Some(op.clone()),
            _ => {}
        }
    }

    /// Serialize as a `dra-topo-telemetry/v1` JSON document with the
    /// `deterministic` / `profile` split (see the module docs).
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"format\":");
        jsonw::str(&mut out, NET_SNAPSHOT_FORMAT);
        out.push_str(",\"cells_merged\":");
        jsonw::uint(&mut out, self.cells_merged);
        out.push_str(",\"deterministic\":{\"n_nodes\":");
        jsonw::uint(&mut out, self.nodes.len() as u64);
        out.push_str(",\"drop_causes\":[");
        for (i, name) in self.drop_causes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            jsonw::str(&mut out, name);
        }
        out.push_str("],\"nodes\":[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"transits\":");
            jsonw::uint(&mut out, n.transits);
            out.push_str(",\"covered\":");
            jsonw::uint(&mut out, n.covered);
            out.push_str(",\"forwards\":");
            jsonw::uint(&mut out, n.forwards);
            out.push_str(",\"delivered\":");
            jsonw::uint(&mut out, n.delivered);
            out.push_str(",\"actions\":");
            jsonw::uint(&mut out, n.actions);
            out.push_str(",\"drops\":[");
            for (j, d) in n.drops.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                jsonw::uint(&mut out, *d);
            }
            out.push_str("]}");
        }
        out.push_str("],\"forensics\":[");
        for (i, e) in self.forensics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"t\":");
            jsonw::num(&mut out, e.t);
            out.push_str(",\"kind\":");
            jsonw::str(&mut out, e.kind.name());
            match e.kind {
                ForensicKind::Action => {
                    out.push_str(",\"label\":");
                    jsonw::str(&mut out, &e.label);
                    out.push_str(",\"drops_at\":[");
                    for (j, d) in e.drops_at.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        jsonw::uint(&mut out, *d);
                    }
                    out.push(']');
                }
                ForensicKind::FlowDown => {
                    out.push_str(",\"flow\":");
                    jsonw::uint(&mut out, e.flow as u64);
                    out.push_str(",\"cause\":");
                    let idx = e.cause as usize;
                    if idx < self.drop_causes.len() {
                        jsonw::str(&mut out, self.drop_causes[idx]);
                    } else {
                        jsonw::uint(&mut out, e.cause as u64);
                    }
                }
                ForensicKind::FlowUp => {
                    out.push_str(",\"flow\":");
                    jsonw::uint(&mut out, e.flow as u64);
                }
            }
            out.push('}');
        }
        out.push_str("],\"spans\":{\"total\":");
        jsonw::uint(&mut out, self.spans.len() as u64);
        out.push_str(",\"truncated\":");
        out.push_str(if self.spans.len() > SPANS_IN_JSON {
            "true"
        } else {
            "false"
        });
        out.push_str(",\"items\":[");
        for (i, s) in self.spans.iter().take(SPANS_IN_JSON).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"packet\":");
            jsonw::uint(&mut out, s.packet);
            out.push_str(",\"flow\":");
            jsonw::uint(&mut out, s.flow as u64);
            out.push_str(",\"node\":");
            jsonw::uint(&mut out, s.node as u64);
            out.push_str(",\"t0\":");
            jsonw::num(&mut out, s.t0);
            out.push_str(",\"t1\":");
            jsonw::num(&mut out, s.t1);
            out.push_str(",\"kind\":");
            jsonw::str(&mut out, s.kind.name());
            out.push_str(",\"aux\":");
            jsonw::uint(&mut out, s.aux as u64);
            out.push('}');
        }
        out.push_str("]},\"frozen\":");
        match &self.frozen {
            None => out.push_str("null"),
            Some(a) => write_anomaly(&mut out, a),
        }
        out.push_str("},\"profile\":");
        match &self.profile {
            None => out.push_str("null"),
            Some(p) => {
                out.push_str("{\"runs\":");
                jsonw::uint(&mut out, p.runs);
                out.push_str(",\"threads\":");
                jsonw::uint(&mut out, p.threads);
                out.push_str(",\"windows\":");
                jsonw::uint(&mut out, p.windows);
                out.push_str(",\"nonempty_windows\":");
                jsonw::uint(&mut out, p.nonempty_windows);
                out.push_str(",\"cross_messages\":");
                jsonw::uint(&mut out, p.cross_messages);
                out.push_str(",\"wall_ns\":");
                jsonw::uint(&mut out, p.wall_ns);
                out.push_str(",\"barrier_wait_ns\":");
                jsonw::uint(&mut out, p.barrier_wait_ns);
                out.push_str(",\"window_max_events_sum\":");
                jsonw::uint(&mut out, p.window_max_events_sum);
                out.push_str(",\"lp_count\":");
                jsonw::uint(&mut out, p.lp_events.len() as u64);
                out.push_str(",\"events_total\":");
                jsonw::uint(&mut out, p.events_total());
                out.push_str(",\"lp_events_max\":");
                jsonw::uint(&mut out, p.lp_events_max());
                out.push_str(",\"load_imbalance\":");
                jsonw::num(&mut out, p.load_imbalance());
                out.push_str(",\"busy_windows_total\":");
                jsonw::uint(&mut out, p.lp_busy_windows.iter().sum());
                out.push_str(",\"lookahead_s\":{\"min\":");
                let (lo, mean, hi) = if p.lookahead_lps == 0 {
                    (0.0, 0.0, 0.0)
                } else {
                    (
                        p.lookahead_min_s,
                        p.lookahead_sum_s / p.lookahead_lps as f64,
                        p.lookahead_max_s,
                    )
                };
                jsonw::num(&mut out, lo);
                out.push_str(",\"mean\":");
                jsonw::num(&mut out, mean);
                out.push_str(",\"max\":");
                jsonw::num(&mut out, hi);
                out.push_str("},\"lp_events_truncated\":");
                out.push_str(if p.lp_events.len() > LP_EVENTS_IN_JSON {
                    "true"
                } else {
                    "false"
                });
                out.push_str(",\"lp_events\":[");
                for (i, e) in p.lp_events.iter().take(LP_EVENTS_IN_JSON).enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    jsonw::uint(&mut out, *e);
                }
                out.push_str("]}");
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(packet: u64, node: u32, t0: f64) -> FlowSpan {
        FlowSpan {
            packet,
            flow: 1,
            node,
            t0,
            t1: t0 + 1e-6,
            kind: SpanKind::Transit,
            aux: 0,
        }
    }

    fn entry(t: f64, flow: u32) -> ForensicEntry {
        ForensicEntry {
            t,
            kind: ForensicKind::FlowDown,
            flow,
            cause: 2,
            label: String::new(),
            drops_at: [0; NET_DROP_CAUSES],
        }
    }

    fn snap(node: u32, t: f64) -> NetScopeSnapshot {
        let mut nodes = vec![NodeCounters::default(); (node + 1) as usize];
        nodes[node as usize].transits = 10;
        nodes[node as usize].drops[2] = 3;
        NetScopeSnapshot {
            cells_merged: 1,
            drop_causes: vec!["a", "b", "c", "d", "e", "f", "g", "h"],
            nodes,
            forensics: vec![entry(t, node)],
            spans: vec![span(node as u64, node, t)],
            frozen: None,
            profile: None,
        }
    }

    #[test]
    fn merge_is_order_independent() {
        let (a, b, c) = (snap(0, 3.0), snap(2, 1.0), snap(1, 2.0));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut right = c.clone();
        right.merge(&a);
        right.merge(&b);
        assert_eq!(left.to_json_string(), right.to_json_string());
        assert_eq!(left.cells_merged, 3);
        assert_eq!(left.nodes.len(), 3);
        // Forensics sorted by time regardless of merge order.
        let ts: Vec<f64> = left.forensics.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn earliest_frozen_window_wins() {
        let mut a = snap(0, 1.0);
        let mut b = snap(1, 2.0);
        a.frozen = Some(Anomaly {
            reason: "late".into(),
            t: 5.0,
            events: vec![],
        });
        b.frozen = Some(Anomaly {
            reason: "early".into(),
            t: 1.0,
            events: vec![],
        });
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.frozen.as_ref().unwrap().reason, "early");
        assert_eq!(ab.to_json_string(), ba.to_json_string());
    }

    #[test]
    fn profile_merges_by_summation() {
        let mut p = EngineProfile {
            runs: 1,
            threads: 2,
            windows: 10,
            lp_events: vec![5, 3],
            lp_busy_windows: vec![4, 2],
            lookahead_min_s: 1e-6,
            lookahead_max_s: 2e-6,
            lookahead_sum_s: 3e-6,
            lookahead_lps: 2,
            ..EngineProfile::default()
        };
        let q = EngineProfile {
            runs: 1,
            threads: 4,
            windows: 7,
            lp_events: vec![1, 1, 8],
            lp_busy_windows: vec![1, 1, 7],
            lookahead_min_s: 5e-7,
            lookahead_max_s: 1e-6,
            lookahead_sum_s: 2e-6,
            lookahead_lps: 3,
            ..EngineProfile::default()
        };
        p.merge(&q);
        assert_eq!(p.runs, 2);
        assert_eq!(p.threads, 4);
        assert_eq!(p.windows, 17);
        assert_eq!(p.lp_events, vec![6, 4, 8]);
        assert_eq!(p.events_total(), 18);
        assert_eq!(p.lp_events_max(), 8);
        assert!((p.load_imbalance() - 8.0 / 6.0).abs() < 1e-12);
        assert_eq!(p.lookahead_min_s, 5e-7);
        assert_eq!(p.lookahead_max_s, 2e-6);
    }

    #[test]
    fn json_shape_splits_deterministic_and_profile() {
        let mut s = snap(0, 1.0);
        s.forensics.push(ForensicEntry {
            t: 0.5,
            kind: ForensicKind::Action,
            flow: u32::MAX,
            cause: u32::MAX,
            label: "sru-kill node3/lc0".into(),
            drops_at: [1, 0, 0, 0, 0, 0, 0, 0],
        });
        s.forensics.sort_unstable_by(ForensicEntry::cmp_canonical);
        s.profile = Some(EngineProfile {
            runs: 1,
            threads: 2,
            windows: 4,
            lp_events: vec![3, 1],
            lp_busy_windows: vec![2, 1],
            lookahead_min_s: 1e-6,
            lookahead_max_s: 1e-6,
            lookahead_sum_s: 2e-6,
            lookahead_lps: 2,
            ..EngineProfile::default()
        });
        let json = s.to_json_string();
        assert!(json.starts_with("{\"format\":\"dra-topo-telemetry/v1\""));
        assert!(json.contains("\"deterministic\":{\"n_nodes\":1"));
        assert!(json.contains("\"kind\":\"action\""));
        assert!(json.contains("\"label\":\"sru-kill node3/lc0\""));
        assert!(json.contains("\"kind\":\"flow_down\""));
        assert!(json.contains("\"cause\":\"c\""));
        assert!(json.contains("\"frozen\":null"));
        assert!(json.contains("\"profile\":{\"runs\":1"));
        assert!(json.contains("\"load_imbalance\":1.5"));
        // The profile section comes after the deterministic one closes.
        let det = json.find("\"deterministic\"").unwrap();
        let prof = json.find("\"profile\"").unwrap();
        assert!(det < prof);

        let serial = NetScopeSnapshot {
            profile: None,
            ..snap(0, 1.0)
        };
        assert!(serial.to_json_string().ends_with("\"profile\":null}"));
    }
}
