//! The flight recorder: a fixed-capacity ring of compact events.
//!
//! Every interesting hop in a packet's life (arrival, FIB lookup, VOQ
//! enqueue, iSLIP grant, fabric transit, EIB detour, reassembly,
//! deliver/drop) appends one 32-byte record stamped with DES sim-time.
//! The ring holds the last `capacity` events; when something goes
//! wrong — a panic, or the first anomalous drop — the window it holds
//! is exactly the evidence a post-mortem needs.

/// What happened. The `a`/`b` payload fields are kind-specific (see
/// the DESIGN.md event-schema table): typically `a` = linecard or
/// drop-cause index, `b` = bytes or cell count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Packet arrived at an ingress linecard (`a` = lc, `b` = ip bytes).
    Arrival = 0,
    /// FIB resolved an egress (`a` = ingress lc, `b` = egress lc).
    FibLookup = 1,
    /// Packet's cells entered a VOQ (`a` = lc, `b` = cell count).
    VoqEnqueue = 2,
    /// iSLIP granted an input→output pair (`a` = src lc, `b` = dst lc).
    IslipGrant = 3,
    /// A cell crossed the fabric (`a` = src lc, `b` = dst lc).
    FabricTransit = 4,
    /// Packet detoured over the EIB (`a` = lc, `b` = ip bytes).
    EibDetour = 5,
    /// Egress SRU completed reassembly (`a` = lc, `b` = ip bytes).
    Reassembly = 6,
    /// Packet delivered (`a` = egress lc, `b` = ip bytes).
    Deliver = 7,
    /// Packet dropped (`a` = `DropCause` index, `b` = lc).
    Drop = 8,
    /// Network: packet entered a router (`a` = node, `b` = in port).
    NetTransit = 9,
    /// Network: packet forwarded out a link (`a` = node, `b` = out port).
    NetForward = 10,
    /// Network: packet delivered at its host (`a` = node, `b` = hops).
    NetDeliver = 11,
    /// Network: packet dropped (`a` = node, `b` = `NetDropCause` index).
    NetDrop = 12,
    /// Network: scripted fault/repair action (`a` = node, `b` = action
    /// index in the scenario script; not packet-scoped).
    NetAct = 13,
}

impl EventKind {
    /// Stable lowercase name used in dumps and exported JSON.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Arrival => "arrival",
            EventKind::FibLookup => "fib-lookup",
            EventKind::VoqEnqueue => "voq-enqueue",
            EventKind::IslipGrant => "islip-grant",
            EventKind::FabricTransit => "fabric-transit",
            EventKind::EibDetour => "eib-detour",
            EventKind::Reassembly => "reassembly",
            EventKind::Deliver => "deliver",
            EventKind::Drop => "drop",
            EventKind::NetTransit => "net-transit",
            EventKind::NetForward => "net-forward",
            EventKind::NetDeliver => "net-deliver",
            EventKind::NetDrop => "net-drop",
            EventKind::NetAct => "net-act",
        }
    }
}

/// One flight-recorder record. `t` is DES sim-time in seconds.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Sim-time stamp (seconds).
    pub t: f64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (see [`EventKind`]).
    pub a: u32,
    /// Kind-specific payload (see [`EventKind`]).
    pub b: u32,
    /// The packet involved (0 when not packet-scoped).
    pub packet: u64,
}

/// Fixed-capacity overwrite-oldest ring of [`Event`]s.
///
/// The capacity is tracked explicitly (`Vec::with_capacity` may
/// over-allocate, and the wrap arithmetic needs the exact bound).
#[derive(Debug)]
pub struct Ring {
    buf: Vec<Event>,
    cap: usize,
    next: usize,
    appended: u64,
}

impl Ring {
    /// Ring holding the last `capacity` events (capacity ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Ring {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            appended: 0,
        }
    }

    /// Append one event, overwriting the oldest once full.
    #[inline]
    pub fn push(&mut self, ev: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
        }
        self.next = (self.next + 1) % self.cap;
        self.appended += 1;
    }

    /// Total events ever appended (≥ `len`).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum events held.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The retained window, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &Event> {
        let split = if self.buf.len() < self.cap {
            0
        } else {
            self.next
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    /// Forget everything (capacity is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.appended = 0;
    }

    /// Human-readable dump of the retained window, oldest first — the
    /// format printed on panic and by on-demand dumps.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "flight recorder: {} of {} events retained (capacity {})",
            self.len(),
            self.appended(),
            self.capacity()
        )
        .expect("write to String");
        for ev in self.recent() {
            writeln!(
                out,
                "  t={:.9}s {:<14} packet={:#018x} a={} b={}",
                ev.t,
                ev.kind.name(),
                ev.packet,
                ev.a,
                ev.b
            )
            .expect("write to String");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, packet: u64) -> Event {
        Event {
            t,
            kind: EventKind::Arrival,
            a: 1,
            b: 2,
            packet,
        }
    }

    #[test]
    fn ring_wraps_oldest_first() {
        let mut r = Ring::new(3);
        for i in 0..5u64 {
            r.push(ev(i as f64, i));
        }
        assert_eq!(r.appended(), 5);
        assert_eq!(r.len(), 3);
        let kept: Vec<u64> = r.recent().map(|e| e.packet).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn ring_partial_fill() {
        let mut r = Ring::new(8);
        r.push(ev(0.5, 7));
        let kept: Vec<u64> = r.recent().map(|e| e.packet).collect();
        assert_eq!(kept, vec![7]);
        assert!(r.dump().contains("arrival"));
        r.clear();
        assert!(r.is_empty());
    }
}
