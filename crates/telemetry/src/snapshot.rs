//! Point-in-time, mergeable export of a telemetry hub.
//!
//! Campaign workers snapshot their thread-local hub after each cell;
//! the engine merges snapshots (in cell order) into one
//! `dra-telemetry/v1` section. Every merge operation is commutative
//! and associative — counter adds, exact histogram-bucket adds, gauge
//! maxima, earliest-anomaly-wins — so the merged section is identical
//! whether one worker ran the campaign or eight did.

use crate::hist::CompactHist;
use crate::jsonw;
use crate::recorder::Event;

/// Version tag of the exported JSON section.
pub const SNAPSHOT_FORMAT: &str = "dra-telemetry/v1";

/// Flight-recorder window frozen by the first anomaly trigger.
#[derive(Debug, Clone)]
pub struct Anomaly {
    /// What tripped the recorder (e.g. "first eib-oversubscribed drop").
    pub reason: String,
    /// Sim-time of the trigger.
    pub t: f64,
    /// The retained event window, oldest first.
    pub events: Vec<Event>,
}

/// Mergeable snapshot of one hub's registry + recorder + sampler.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Sampling modulus in force (0 = sampling off).
    pub sample_every: u64,
    /// Packets that entered the lifecycle sample.
    pub sampled_packets: u64,
    /// Sampled packets still in flight when the snapshot was taken.
    pub open_tracks: u64,
    /// Registry counters, registration order.
    pub counters: Vec<(&'static str, u64)>,
    /// Registry gauges, registration order (merged by max).
    pub gauges: Vec<(&'static str, f64)>,
    /// Registry histograms, registration order.
    pub hists: Vec<(&'static str, CompactHist)>,
    /// Total events appended to the flight recorder.
    pub ring_appended: u64,
    /// Flight-recorder capacity.
    pub ring_capacity: u64,
    /// First anomaly dump, if one tripped.
    pub anomaly: Option<Anomaly>,
}

/// Cap on anomaly events serialized into the JSON section (the full
/// window stays available in the struct).
const ANOMALY_EVENTS_IN_JSON: usize = 64;

/// Append an anomaly as a JSON object — shared by the single-router
/// snapshot and the network-scope snapshot's `frozen` field.
pub(crate) fn write_anomaly(out: &mut String, a: &Anomaly) {
    out.push_str("{\"reason\":");
    jsonw::str(out, &a.reason);
    out.push_str(",\"t\":");
    jsonw::num(out, a.t);
    let skip = a.events.len().saturating_sub(ANOMALY_EVENTS_IN_JSON);
    out.push_str(",\"events_truncated\":");
    out.push_str(if skip > 0 { "true" } else { "false" });
    out.push_str(",\"events\":[");
    for (i, ev) in a.events[skip..].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"t\":");
        jsonw::num(out, ev.t);
        out.push_str(",\"kind\":");
        jsonw::str(out, ev.kind.name());
        out.push_str(",\"a\":");
        jsonw::uint(out, ev.a as u64);
        out.push_str(",\"b\":");
        jsonw::uint(out, ev.b as u64);
        out.push_str(",\"packet\":");
        jsonw::uint(out, ev.packet);
        out.push('}');
    }
    out.push_str("]}");
}

impl Snapshot {
    /// Merge another worker's snapshot into this one.
    ///
    /// # Panics
    /// Panics if the registries disagree (different metric names or
    /// histogram layouts) — snapshots must come from the same build.
    pub fn merge(&mut self, other: &Snapshot) {
        assert_eq!(
            self.counters.len(),
            other.counters.len(),
            "Snapshot::merge: counter registries differ"
        );
        self.sample_every = self.sample_every.max(other.sample_every);
        self.sampled_packets += other.sampled_packets;
        self.open_tracks += other.open_tracks;
        for ((name, v), (oname, ov)) in self.counters.iter_mut().zip(&other.counters) {
            assert_eq!(name, oname, "Snapshot::merge: counter registries differ");
            *v += ov;
        }
        for ((name, v), (oname, ov)) in self.gauges.iter_mut().zip(&other.gauges) {
            assert_eq!(name, oname, "Snapshot::merge: gauge registries differ");
            *v = v.max(*ov);
        }
        assert_eq!(
            self.hists.len(),
            other.hists.len(),
            "Snapshot::merge: histogram registries differ"
        );
        for ((name, h), (oname, oh)) in self.hists.iter_mut().zip(&other.hists) {
            assert_eq!(name, oname, "Snapshot::merge: histogram registries differ");
            h.merge(oh);
        }
        self.ring_appended += other.ring_appended;
        self.ring_capacity = self.ring_capacity.max(other.ring_capacity);
        // Earliest anomaly wins; ties keep the current one, which is
        // order-stable because the campaign merges in cell order.
        match (&self.anomaly, &other.anomaly) {
            (None, Some(_)) => self.anomaly = other.anomaly.clone(),
            (Some(mine), Some(theirs)) if theirs.t < mine.t => {
                self.anomaly = other.anomaly.clone();
            }
            _ => {}
        }
    }

    /// Serialize as a compact `dra-telemetry/v1` JSON object.
    ///
    /// The text parses with `dra_campaign::json::Json::parse` (the
    /// campaign embeds it that way) and with any standard JSON loader
    /// (the CI job uses Python's).
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"format\":");
        jsonw::str(&mut out, SNAPSHOT_FORMAT);
        out.push_str(",\"sample_every\":");
        jsonw::uint(&mut out, self.sample_every);
        out.push_str(",\"sampled_packets\":");
        jsonw::uint(&mut out, self.sampled_packets);
        out.push_str(",\"open_tracks\":");
        jsonw::uint(&mut out, self.open_tracks);
        out.push_str(",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            jsonw::str(&mut out, name);
            out.push(':');
            jsonw::uint(&mut out, *v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            jsonw::str(&mut out, name);
            out.push(':');
            jsonw::num(&mut out, *v);
        }
        out.push_str("},\"hists\":{");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            jsonw::str(&mut out, name);
            out.push_str(":{\"count\":");
            jsonw::uint(&mut out, h.count());
            out.push_str(",\"underflow\":");
            jsonw::uint(&mut out, h.underflow());
            out.push_str(",\"overflow\":");
            jsonw::uint(&mut out, h.overflow());
            if h.count() > 0 && h.count() > h.overflow() {
                for (key, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                    let x = h.quantile(q);
                    if x.is_finite() {
                        out.push_str(",\"");
                        out.push_str(key);
                        out.push_str("\":");
                        jsonw::num(&mut out, x);
                    }
                }
            }
            out.push('}');
        }
        out.push_str("},\"recorder\":{\"appended\":");
        jsonw::uint(&mut out, self.ring_appended);
        out.push_str(",\"capacity\":");
        jsonw::uint(&mut out, self.ring_capacity);
        out.push_str("},\"anomaly\":");
        match &self.anomaly {
            None => out.push_str("null"),
            Some(a) => write_anomaly(&mut out, a),
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::EventKind;

    fn snap(c: u64) -> Snapshot {
        let mut h = CompactHist::new(1e-9, 1.0, 90);
        h.record(1e-5 * (c + 1) as f64);
        Snapshot {
            sample_every: 64,
            sampled_packets: c,
            open_tracks: 0,
            counters: vec![("router.arrivals", c * 10)],
            gauges: vec![("des.sim_time", c as f64)],
            hists: vec![("latency.total", h)],
            ring_appended: c,
            ring_capacity: 1024,
            anomaly: None,
        }
    }

    #[test]
    fn merge_is_order_independent() {
        let (a, b, c) = (snap(1), snap(2), snap(3));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut right = c.clone();
        right.merge(&a);
        right.merge(&b);
        assert_eq!(left.to_json_string(), right.to_json_string());
        assert_eq!(left.counters[0].1, 60);
        assert_eq!(left.gauges[0].1, 3.0);
        assert_eq!(left.hists[0].1.count(), 3);
    }

    #[test]
    fn earliest_anomaly_wins() {
        let mut a = snap(1);
        let mut b = snap(2);
        a.anomaly = Some(Anomaly {
            reason: "late".into(),
            t: 5.0,
            events: vec![],
        });
        b.anomaly = Some(Anomaly {
            reason: "early".into(),
            t: 1.0,
            events: vec![Event {
                t: 0.9,
                kind: EventKind::Drop,
                a: 6,
                b: 0,
                packet: 3,
            }],
        });
        a.merge(&b);
        assert_eq!(a.anomaly.as_ref().unwrap().reason, "early");
        let json = a.to_json_string();
        assert!(json.contains("\"anomaly\":{\"reason\":\"early\""));
        assert!(json.contains("\"kind\":\"drop\""));
    }

    #[test]
    fn json_has_versioned_format() {
        let json = snap(0).to_json_string();
        assert!(json.starts_with("{\"format\":\"dra-telemetry/v1\""));
        assert!(json.contains("\"counters\":{\"router.arrivals\":0}"));
        assert!(json.contains("\"anomaly\":null"));
    }
}
