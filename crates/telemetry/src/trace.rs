//! Chrome `trace_event` export: one JSON file a run drops straight
//! into Perfetto (ui.perfetto.dev) or `chrome://tracing`.
//!
//! Sampled packets become complete ("X") spans — one per lifecycle
//! phase — grouped by process id (the campaign maps pid to the cell
//! index; standalone runs use the ingress linecard) with the packet id
//! as thread id, so a packet's phases stack on one timeline row.
//! Drops and anomalies are instant ("i") events.

use crate::jsonw;

/// One Chrome trace event (subset: complete + instant phases).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name shown on the span.
    pub name: &'static str,
    /// `'X'` (complete, has `dur`) or `'i'` (instant).
    pub ph: char,
    /// Start, microseconds of sim-time.
    pub ts_us: f64,
    /// Duration in microseconds (complete events only).
    pub dur_us: f64,
    /// Process id lane (cell index under the campaign, else linecard).
    pub pid: u32,
    /// Thread id lane (packet id truncated to 32 bits).
    pub tid: u32,
    /// Full packet id, attached under `args`.
    pub packet: u64,
}

/// Serialize events to a Chrome `trace_event` JSON object.
///
/// Output is `{"traceEvents": [...], "displayTimeUnit": "ns"}`; event
/// order is preserved, so callers control determinism by ordering the
/// slice (the campaign sorts by cell index first).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        jsonw::str(&mut out, ev.name);
        out.push_str(",\"ph\":");
        let ph = ev.ph.to_string();
        jsonw::str(&mut out, &ph);
        out.push_str(",\"ts\":");
        jsonw::num(&mut out, ev.ts_us);
        if ev.ph == 'X' {
            out.push_str(",\"dur\":");
            jsonw::num(&mut out, ev.dur_us);
        } else {
            // Thread-scoped instant: renders as a marker on the row.
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"pid\":");
        jsonw::uint(&mut out, ev.pid as u64);
        out.push_str(",\"tid\":");
        jsonw::uint(&mut out, ev.tid as u64);
        out.push_str(",\"args\":{\"packet\":");
        jsonw::uint(&mut out, ev.packet);
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_json_shape() {
        let events = vec![
            TraceEvent {
                name: "switching",
                ph: 'X',
                ts_us: 12.5,
                dur_us: 3.25,
                pid: 0,
                tid: 7,
                packet: (1 << 48) | 7,
            },
            TraceEvent {
                name: "drop:voq-overflow",
                ph: 'i',
                ts_us: 20.0,
                dur_us: 0.0,
                pid: 0,
                tid: 9,
                packet: 9,
            },
        ];
        let s = chrome_trace_json(&events);
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"dur\":3.25"));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"s\":\"t\""));
        assert!(s.ends_with("],\"displayTimeUnit\":\"ns\"}"));
        // Instant events carry no dur.
        let instant = &s[s.find("drop:voq-overflow").unwrap()..];
        assert!(!instant.contains("\"dur\""));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ns\"}"
        );
    }
}
