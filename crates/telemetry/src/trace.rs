//! Chrome `trace_event` export: one JSON file a run drops straight
//! into Perfetto (ui.perfetto.dev) or `chrome://tracing`.
//!
//! Sampled packets become complete ("X") spans — one per lifecycle
//! phase — grouped by process id (the campaign maps pid to the cell
//! index; standalone runs use the ingress linecard; network traces use
//! the router id, one track per router) with the packet id as thread
//! id, so a packet's phases stack on one timeline row. Drops and
//! anomalies are instant ("i") events. Network traces additionally
//! emit flow arrows ("s" start / "f" finish pairs sharing an `id`)
//! linking a packet's spans across router tracks.

use crate::jsonw;

/// One Chrome trace event (subset: complete + instant + flow phases).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name shown on the span.
    pub name: &'static str,
    /// `'X'` (complete, has `dur`), `'i'` (instant), or `'s'`/`'f'`
    /// (flow arrow start/finish).
    pub ph: char,
    /// Start, microseconds of sim-time.
    pub ts_us: f64,
    /// Duration in microseconds (complete events only).
    pub dur_us: f64,
    /// Process id lane (cell index under the campaign, else linecard
    /// or router id).
    pub pid: u32,
    /// Thread id lane (packet id truncated to 32 bits).
    pub tid: u32,
    /// Full packet id, attached under `args`.
    pub packet: u64,
    /// Flow-arrow id pairing `'s'` with `'f'` (0 for other phases).
    pub id: u64,
}

/// Serialize events to a Chrome `trace_event` JSON object.
///
/// Output is `{"traceEvents": [...], "displayTimeUnit": "ns"}`; event
/// order is preserved, so callers control determinism by ordering the
/// slice (the campaign sorts by cell index first).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        jsonw::str(&mut out, ev.name);
        out.push_str(",\"ph\":");
        let ph = ev.ph.to_string();
        jsonw::str(&mut out, &ph);
        out.push_str(",\"ts\":");
        jsonw::num(&mut out, ev.ts_us);
        if ev.ph == 'X' {
            out.push_str(",\"dur\":");
            jsonw::num(&mut out, ev.dur_us);
        } else if ev.ph == 's' || ev.ph == 'f' {
            // Flow arrow: the id pairs start with finish; binding the
            // finish to its enclosing slice's end ("bp":"e") makes
            // Perfetto draw the arrow span-to-span.
            out.push_str(",\"cat\":\"flow\",\"id\":");
            jsonw::uint(&mut out, ev.id);
            if ev.ph == 'f' {
                out.push_str(",\"bp\":\"e\"");
            }
        } else {
            // Thread-scoped instant: renders as a marker on the row.
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"pid\":");
        jsonw::uint(&mut out, ev.pid as u64);
        out.push_str(",\"tid\":");
        jsonw::uint(&mut out, ev.tid as u64);
        out.push_str(",\"args\":{\"packet\":");
        jsonw::uint(&mut out, ev.packet);
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_json_shape() {
        let events = vec![
            TraceEvent {
                name: "switching",
                ph: 'X',
                ts_us: 12.5,
                dur_us: 3.25,
                pid: 0,
                tid: 7,
                packet: (1 << 48) | 7,
                id: 0,
            },
            TraceEvent {
                name: "drop:voq-overflow",
                ph: 'i',
                ts_us: 20.0,
                dur_us: 0.0,
                pid: 0,
                tid: 9,
                packet: 9,
                id: 0,
            },
        ];
        let s = chrome_trace_json(&events);
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"dur\":3.25"));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"s\":\"t\""));
        assert!(s.ends_with("],\"displayTimeUnit\":\"ns\"}"));
        // Instant events carry no dur.
        let instant = &s[s.find("drop:voq-overflow").unwrap()..];
        assert!(!instant.contains("\"dur\""));
    }

    #[test]
    fn flow_arrows_pair_by_id() {
        let arrow = |ph| TraceEvent {
            name: "flow",
            ph,
            ts_us: 5.0,
            dur_us: 0.0,
            pid: 3,
            tid: 11,
            packet: 11,
            id: 11,
        };
        let s = chrome_trace_json(&[arrow('s'), arrow('f')]);
        assert!(s.contains("\"ph\":\"s\",\"ts\":5,\"cat\":\"flow\",\"id\":11"));
        assert!(s.contains("\"ph\":\"f\",\"ts\":5,\"cat\":\"flow\",\"id\":11,\"bp\":\"e\""));
        // Flow phases carry neither dur nor the instant scope marker.
        assert!(!s.contains("\"dur\""));
        assert!(!s.contains("\"s\":\"t\""));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ns\"}"
        );
    }
}
