//! `topo` — run network-of-routers sweeps from the command line.
//!
//! ```text
//! topo [--spec NAME] [--quick] [--workers N] [--sim-threads N]
//!      [--seed S] [--out PATH | --no-out] [--csv] [--dry-run]
//!      [--telemetry-out PATH] [--trace-out PATH]
//! topo --list
//! topo --check PATH
//! ```
//!
//! Artifacts land under `results/topo_<spec>.json` by default and are
//! byte-identical at every worker count.

use dra_campaign::json::Json;
use dra_campaign::report::{print_csv, print_table};
use dra_topo::engine::{self, TopoRunOptions};
use dra_topo::registry;
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    spec: String,
    quick: bool,
    workers: Option<usize>,
    sim_threads: Option<usize>,
    seed: Option<u64>,
    out: Option<PathBuf>,
    no_out: bool,
    csv: bool,
    list: bool,
    dry_run: bool,
    check: Option<PathBuf>,
    telemetry_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: topo [--spec NAME] [--quick] [--workers N] [--sim-threads N]\n\
         \x20           [--seed S] [--out PATH | --no-out] [--csv] [--dry-run]\n\
         \x20           [--telemetry-out PATH] [--trace-out PATH]\n\
         \x20      topo --list\n\
         \x20      topo --check PATH\n\
         \n\
         Runs a named topo sweep (default: resilience) and writes a\n\
         dra-topo/v1 JSON artifact to results/topo_<spec>.json.\n\
         \n\
         --sim-threads  threads per network simulation (default 1 = the\n\
         \x20            serial kernel; N > 1 runs the conservative\n\
         \x20            parallel engine; artifacts are byte-identical\n\
         \x20            at every value)\n\
         --telemetry-out  write the merged dra-topo-telemetry/v1\n\
         \x20            network-scope snapshot (per-router counters,\n\
         \x20            fault forensics, sampled flow spans, PDES\n\
         \x20            profile) to PATH; needs a binary built with\n\
         \x20            `--features telemetry`\n\
         --trace-out  write the sampled packets' multi-hop flow trace\n\
         \x20         as Chrome trace_event JSON to PATH (open at\n\
         \x20         https://ui.perfetto.dev); same feature gate\n\
         --dry-run   print the expanded grid (cells, axes, totals)\n\
         \x20         and exit without simulating\n\
         --check     validate an existing artifact (format, ordering,\n\
         \x20         per-cell packet conservation)"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        spec: "resilience".into(),
        quick: false,
        workers: None,
        sim_threads: None,
        seed: None,
        out: None,
        no_out: false,
        csv: false,
        list: false,
        dry_run: false,
        check: None,
        telemetry_out: None,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--spec" => cli.spec = value("--spec"),
            "--quick" => cli.quick = true,
            "--workers" => {
                cli.workers = Some(value("--workers").parse().unwrap_or_else(|_| usage()))
            }
            "--sim-threads" => {
                cli.sim_threads = Some(value("--sim-threads").parse().unwrap_or_else(|_| usage()))
            }
            "--seed" => cli.seed = Some(value("--seed").parse().unwrap_or_else(|_| usage())),
            "--out" => cli.out = Some(PathBuf::from(value("--out"))),
            "--no-out" => cli.no_out = true,
            "--csv" => cli.csv = true,
            "--list" => cli.list = true,
            "--dry-run" => cli.dry_run = true,
            "--check" => cli.check = Some(PathBuf::from(value("--check"))),
            "--telemetry-out" => cli.telemetry_out = Some(PathBuf::from(value("--telemetry-out"))),
            "--trace-out" => cli.trace_out = Some(PathBuf::from(value("--trace-out"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    // Contradictory combinations are hard errors, not silent picks.
    if cli.out.is_some() && cli.no_out {
        eprintln!("--out and --no-out conflict");
        usage();
    }
    if cli.list && cli.check.is_some() {
        eprintln!("--list and --check conflict");
        usage();
    }
    if cli.dry_run && (cli.telemetry_out.is_some() || cli.trace_out.is_some()) {
        eprintln!("--dry-run simulates nothing, so --telemetry-out/--trace-out conflict with it");
        usage();
    }
    cli
}

/// Summarize an artifact as table rows.
fn artifact_rows(artifact: &Json) -> Vec<Vec<String>> {
    let get_mean = |c: &Json, key: &str| {
        c.get(key)
            .and_then(|d| d.get("mean"))
            .and_then(Json::as_f64)
    };
    artifact
        .get("cells")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|c| {
            if let Some(err) = c.get("error").and_then(Json::as_str) {
                return vec![
                    c.get("id").and_then(Json::as_str).unwrap_or("?").into(),
                    format!("ERROR: {err}"),
                    String::new(),
                    String::new(),
                    String::new(),
                ];
            }
            vec![
                c.get("id").and_then(Json::as_str).unwrap_or("?").into(),
                format!("{}", c.get("injected").and_then(Json::as_u64).unwrap_or(0)),
                get_mean(c, "delivery_ratio")
                    .map(|v| format!("{v:.6}"))
                    .unwrap_or_default(),
                get_mean(c, "flow_availability")
                    .map(|v| format!("{v:.4}"))
                    .unwrap_or_default(),
                get_mean(c, "latency_s")
                    .map(|v| format!("{:.1}", v * 1e6))
                    .unwrap_or_default(),
            ]
        })
        .collect()
}

fn main() -> ExitCode {
    let cli = parse_cli();

    if cli.list {
        let rows: Vec<Vec<String>> = registry::NAMES
            .iter()
            .map(|n| {
                let spec = registry::spec_by_name(n, false).expect("registered");
                vec![
                    n.to_string(),
                    format!("{} cells", spec.cells.len()),
                    spec.description.clone(),
                ]
            })
            .collect();
        print_table("available topo sweeps", &["name", "size", "summary"], &rows);
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &cli.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match engine::validate_artifact(&text) {
            Ok((cells, errors)) => {
                println!(
                    "{}: valid {} artifact, {cells} cells, {errors} error cells",
                    path.display(),
                    engine::ARTIFACT_FORMAT
                );
                if errors > 0 {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("{}: INVALID artifact: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    let mut spec = match registry::spec_by_name(&cli.spec, cli.quick) {
        Some(s) => s,
        None => {
            eprintln!("unknown sweep {:?}; try --list", cli.spec);
            return ExitCode::FAILURE;
        }
    };
    if let Some(seed) = cli.seed {
        spec.master_seed = seed;
    }

    if cli.dry_run {
        let rows: Vec<Vec<String>> = spec
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.id.clone(),
                    c.arch.label().into(),
                    c.topology.label(),
                    c.faults.label(),
                    format!("{}", c.flows.n_flows),
                    format!("{}", c.replications),
                    format!("{}", c.seed_group),
                ]
            })
            .collect();
        print_table(
            &format!("sweep {} [{}] — dry run", spec.name, spec.digest()),
            &["id", "arch", "topology", "faults", "flows", "reps", "group"],
            &rows,
        );
        let total_reps: u32 = spec.cells.iter().map(|c| c.replications).sum();
        println!(
            "{} cells, {} total replications, master seed {}; nothing simulated",
            spec.cells.len(),
            total_reps,
            spec.master_seed
        );
        return ExitCode::SUCCESS;
    }

    let out = if cli.no_out {
        None
    } else {
        Some(
            cli.out
                .clone()
                .unwrap_or_else(|| PathBuf::from(format!("results/topo_{}.json", spec.name))),
        )
    };
    let opts = TopoRunOptions {
        workers: cli.workers,
        sim_threads: cli.sim_threads,
        out,
        quiet: false,
        telemetry_out: cli.telemetry_out.clone(),
        trace_out: cli.trace_out.clone(),
    };
    let outcome = match engine::run(&spec, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("topo sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let artifact = dra_campaign::json::parse(&outcome.artifact_text).expect("validated");
    let headers = ["id", "injected", "delivery", "flow_avail", "latency_us"];
    let rows = artifact_rows(&artifact);
    if cli.csv {
        print_csv(&headers, &rows);
    } else {
        print_table(&format!("topo sweep {}", spec.name), &headers, &rows);
    }
    if let Some(path) = &outcome.path {
        eprintln!("artifact: {}", path.display());
    }
    if outcome.failed > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
