//! Interned provenance chains: the parent-pointer arena behind the
//! parallel engine's tie ordering.
//!
//! The serial kernel breaks exact `f64` time ties by scheduling
//! sequence; the parallel engine recovers that order from event
//! *provenance* — the chain of ancestor pop times, compared most
//! recent first (see the [`crate::pdes`] module docs). Carrying that
//! chain as a `Vec<f64>` per packet costs one heap allocation plus a
//! clone-and-push **per hop per packet**, which dominated the parallel
//! engine's per-event overhead.
//!
//! This module stores chains structurally instead: an append-only
//! arena of `(pop_time, parent)` nodes. A packet carries one `u32`
//! handle; extending its chain by a hop is one arena append, and
//! comparing two chains walks parent pointers — which is naturally
//! most-recent-first, exactly the order [`chain_cmp_ref`] (the
//! retained `Vec<f64>` reference implementation) visits. No depth or
//! length field is needed: a chain that runs out of ancestors first
//! on an equal prefix is the *shorter* chain, and the walk observes
//! that as hitting [`NIL`] first.
//!
//! Memory stays bounded by **epoch-based recycling**: at window
//! barriers the owning LP asks the arena to compact, copying only the
//! paths reachable from still-pending events into a fresh epoch and
//! rewriting their handles. Copying paths *by value* is semantically
//! free — chains are compared by value, never by identity — so losing
//! structural sharing across a compaction cannot change any ordering.
//! Handles from an older epoch are invalid the moment the epoch ends;
//! the regression tests in `tests/chain_arena.rs` pin that recycling
//! never aliases a live chain.

use std::cmp::Ordering;

/// The empty chain (no provenance: injections and scripted actions).
pub const NIL: u32 = u32::MAX;

/// Compact below this many nodes is never worthwhile.
const MIN_COMPACT: usize = 1 << 15;

/// One chain node: a pop time and the rest of the chain.
#[derive(Debug, Clone, Copy)]
struct ChainNode {
    time: f64,
    parent: u32,
}

/// An append-only arena of provenance-chain nodes with epoch-based
/// compaction. Handles are `u32` indices; [`NIL`] is the empty chain.
#[derive(Debug, Default)]
pub struct ChainArena {
    nodes: Vec<ChainNode>,
    /// Next epoch under construction during a compaction.
    scratch: Vec<ChainNode>,
    /// Reused path buffer for [`ChainArena::relocate`].
    path: Vec<f64>,
    /// Compact when `nodes.len()` reaches this (0 = `MIN_COMPACT`).
    next_compact: usize,
    /// Epochs completed; a handle is only valid within the epoch that
    /// created it.
    epoch: u64,
}

impl ChainArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Nodes currently stored (live + garbage awaiting compaction).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are stored.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Compactions completed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Extend `parent` by one pop at `time`; returns the new chain.
    #[inline]
    pub fn extend(&mut self, parent: u32, time: f64) -> u32 {
        let h = self.nodes.len() as u32;
        assert!(h != NIL, "chain arena overflow");
        self.nodes.push(ChainNode { time, parent });
        h
    }

    /// Compare two chains most-recent-first — bit-identical to
    /// [`chain_cmp_ref`] on the equivalent oldest-first `Vec<f64>`s:
    /// first differing pop time decides; on an equal prefix the chain
    /// that runs out first (independent provenance) orders first.
    pub fn cmp(&self, mut a: u32, mut b: u32) -> Ordering {
        loop {
            if a == b {
                // Covers (NIL, NIL) and shared interned suffixes.
                return Ordering::Equal;
            }
            if a == NIL {
                return Ordering::Less;
            }
            if b == NIL {
                return Ordering::Greater;
            }
            let na = self.nodes[a as usize];
            let nb = self.nodes[b as usize];
            match na.time.total_cmp(&nb.time) {
                Ordering::Equal => {
                    a = na.parent;
                    b = nb.parent;
                }
                o => return o,
            }
        }
    }

    /// Append the chain's pop times, most recent first, onto `out`
    /// (the wire/storage form: what [`ChainArena::intern_recent_first`]
    /// reads back and what [`chain_cmp_recent_first`] compares).
    pub fn serialize_into(&self, mut h: u32, out: &mut Vec<f64>) {
        while h != NIL {
            let n = self.nodes[h as usize];
            out.push(n.time);
            h = n.parent;
        }
    }

    /// Intern a most-recent-first pop-time sequence (the form
    /// [`ChainArena::serialize_into`] emits) as a fresh chain.
    pub fn intern_recent_first(&mut self, times: &[f64]) -> u32 {
        let mut h = NIL;
        for &t in times.iter().rev() {
            h = self.extend(h, t);
        }
        h
    }

    /// True when enough garbage may have accumulated that the owner
    /// should run a compaction epoch (cheap to call every barrier).
    pub fn should_compact(&self) -> bool {
        self.nodes.len() >= self.next_compact.max(MIN_COMPACT)
    }

    /// Open a compaction epoch. Until [`ChainArena::finish_compact`],
    /// the owner must [`ChainArena::relocate`] every live handle; any
    /// handle not relocated is garbage and dies with the old epoch.
    pub fn begin_compact(&mut self) {
        self.scratch.clear();
    }

    /// Copy the path reachable from `h` into the next epoch and return
    /// its new handle. Only valid between `begin_compact` and
    /// `finish_compact`.
    pub fn relocate(&mut self, h: u32) -> u32 {
        let mut path = std::mem::take(&mut self.path);
        path.clear();
        let mut cur = h;
        while cur != NIL {
            let n = self.nodes[cur as usize];
            path.push(n.time);
            cur = n.parent;
        }
        let mut nh = NIL;
        for &t in path.iter().rev() {
            let idx = self.scratch.len() as u32;
            assert!(idx != NIL, "chain arena overflow");
            self.scratch.push(ChainNode {
                time: t,
                parent: nh,
            });
            nh = idx;
        }
        self.path = path;
        nh
    }

    /// Close the compaction epoch: the relocated nodes become the
    /// arena, the old epoch's storage is retained (empty) for the next
    /// epoch, and the compaction threshold adapts to the live size so
    /// a large steady-state population is not recompacted every
    /// barrier.
    pub fn finish_compact(&mut self) {
        std::mem::swap(&mut self.nodes, &mut self.scratch);
        self.next_compact = (self.nodes.len() * 4).max(MIN_COMPACT);
        self.epoch += 1;
    }
}

/// The retained reference implementation: compare two provenance
/// chains stored oldest-first (injection first) as the serial-replay
/// `Vec<f64>` representation did, most recent entry first, falling
/// back to shorter-first when one chain's provenance runs out.
pub fn chain_cmp_ref(a: &[f64], b: &[f64]) -> Ordering {
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.total_cmp(y) {
            Ordering::Equal => {}
            o => return o,
        }
    }
    a.len().cmp(&b.len())
}

/// [`chain_cmp_ref`] for chains stored most-recent-first (the
/// serialized form): same order, no reversal.
pub fn chain_cmp_recent_first(a: &[f64], b: &[f64]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.total_cmp(y) {
            Ordering::Equal => {}
            o => return o,
        }
    }
    a.len().cmp(&b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intern_oldest_first(arena: &mut ChainArena, chain: &[f64]) -> u32 {
        let mut h = NIL;
        for &t in chain {
            h = arena.extend(h, t);
        }
        h
    }

    #[test]
    fn cmp_matches_reference_on_handcrafted_chains() {
        let cases: &[(&[f64], &[f64])] = &[
            (&[], &[]),
            (&[], &[1.0]),
            (&[1.0, 2.0], &[1.0, 2.0]),
            (&[1.0, 2.0], &[0.5, 2.0]),
            (&[1.0, 2.0], &[2.0]),
            (&[0.0, 3.0, 5.0], &[1.0, 3.0, 5.0]),
            (&[3.0, 5.0], &[1.0, 3.0, 5.0]),
            (&[-0.0, 2.0], &[0.0, 2.0]), // total_cmp: -0.0 < 0.0
        ];
        let mut arena = ChainArena::new();
        for (a, b) in cases {
            let ha = intern_oldest_first(&mut arena, a);
            let hb = intern_oldest_first(&mut arena, b);
            assert_eq!(arena.cmp(ha, hb), chain_cmp_ref(a, b), "{a:?} vs {b:?}");
            assert_eq!(
                arena.cmp(hb, ha),
                chain_cmp_ref(b, a),
                "{b:?} vs {a:?} (swapped)"
            );
        }
    }

    #[test]
    fn serialize_and_intern_round_trip() {
        let mut arena = ChainArena::new();
        let h = intern_oldest_first(&mut arena, &[1.0, 2.0, 3.0]);
        let mut wire = Vec::new();
        arena.serialize_into(h, &mut wire);
        assert_eq!(wire, vec![3.0, 2.0, 1.0], "most recent first");
        let h2 = arena.intern_recent_first(&wire);
        assert_eq!(arena.cmp(h, h2), Ordering::Equal);
    }

    #[test]
    fn shared_prefix_extension_orders_like_vectors() {
        let mut arena = ChainArena::new();
        let base = intern_oldest_first(&mut arena, &[1.0, 4.0]);
        let left = arena.extend(base, 5.0);
        let right = arena.extend(base, 6.0);
        assert_eq!(arena.cmp(left, right), Ordering::Less);
        assert_eq!(arena.cmp(left, base), Ordering::Greater, "longer > prefix");
        assert_eq!(
            chain_cmp_ref(&[1.0, 4.0, 5.0], &[1.0, 4.0]),
            Ordering::Greater
        );
    }

    #[test]
    fn compaction_preserves_values_and_bumps_epoch() {
        let mut arena = ChainArena::new();
        let live = intern_oldest_first(&mut arena, &[1.0, 2.0, 3.0]);
        // Garbage that must die with the epoch.
        for i in 0..100 {
            arena.extend(NIL, i as f64);
        }
        let before = {
            let mut v = Vec::new();
            arena.serialize_into(live, &mut v);
            v
        };
        arena.begin_compact();
        let live = arena.relocate(live);
        arena.finish_compact();
        assert_eq!(arena.epoch(), 1);
        assert_eq!(arena.len(), 3, "only the live path survives");
        let mut after = Vec::new();
        arena.serialize_into(live, &mut after);
        assert_eq!(before, after);
    }
}
