//! Topo-sweep execution: the grid → worker pool → `dra-topo/v1`
//! artifact pipeline.
//!
//! Mirrors [`dra_campaign::engine`] one level up. The same determinism
//! machinery applies: per-cell seeds derive from `(master_seed,
//! seed_group, replication, stream)` via SplitMix64 — with the extra
//! per-node coordinate of [`crate::seeds::node_seed`] inside each
//! cell — cells are computed in any order on any number of workers,
//! then assembled sorted by cell index, so the artifact is
//! byte-identical at every worker count (the CI `topo-smoke` job pins
//! workers 1 vs 4).

use crate::net::{Flow, NetAction, NetConfig, NetScenario, NetworkSim};
use crate::seeds::{node_seed, NodeSeedStream};
use crate::spec::{TopoCellSpec, TopoFaultSpec, TopoSpec};
use crate::stats::NetDropCause;
use crate::topology::Topology;
use dra_campaign::json::{parse, Json};
use dra_campaign::pool::WorkerPool;
use dra_campaign::seed::{derive_seed, Stream};
use dra_core::scenario::FaultProcess;
use dra_des::stats::Welford;
use dra_router::components::ComponentKind;
use dra_router::faults::{FaultGranularity, FaultInjector};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Artifact format tag.
pub const ARTIFACT_FORMAT: &str = "dra-topo/v1";

/// Seed-stream tag for flow-placement draws (outside the u32 node-id
/// space, so it can never alias a router's stream).
const FLOW_TAG: u64 = 0xF10D_0000_0000_0001;

/// How to execute a sweep.
#[derive(Debug, Clone, Default)]
pub struct TopoRunOptions {
    /// Worker threads (None = one per CPU).
    pub workers: Option<usize>,
    /// Threads for each cell's network simulation (None = 1, the
    /// serial kernel). Any value produces byte-identical artifacts;
    /// N > 1 runs [`crate::pdes`] inside each worker.
    pub sim_threads: Option<usize>,
    /// Artifact path (None = don't write, return text only).
    pub out: Option<PathBuf>,
    /// Suppress progress output.
    pub quiet: bool,
    /// Write the merged `dra-topo-telemetry/v1` network-scope snapshot
    /// here (requires the `telemetry` cargo feature; collection turns
    /// on iff this or `trace_out` is set). The snapshot's
    /// `deterministic` section is byte-identical at any
    /// `sim_threads`/`workers`; only its `profile` section is not.
    pub telemetry_out: Option<PathBuf>,
    /// Write the Chrome `trace_event` flow trace of the sampled
    /// packets here (requires the `telemetry` cargo feature).
    pub trace_out: Option<PathBuf>,
}

/// Result of a sweep.
#[derive(Debug)]
pub struct TopoOutcome {
    /// The artifact document, exactly as (or as would be) written.
    pub artifact_text: String,
    /// Where it was written, if anywhere.
    pub path: Option<PathBuf>,
    /// Cells computed.
    pub cells: usize,
    /// Cells that panicked (recorded as error cells).
    pub failed: usize,
}

/// Execute a topo sweep and assemble its artifact.
pub fn run(spec: &TopoSpec, opts: &TopoRunOptions) -> std::io::Result<TopoOutcome> {
    spec.validate();
    let collect = opts.telemetry_out.is_some() || opts.trace_out.is_some();
    #[cfg(not(feature = "telemetry"))]
    if collect {
        return Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "telemetry output requested, but dra-topo was built without the `telemetry` \
             cargo feature (rebuild with `--features telemetry`)",
        ));
    }
    let digest = spec.digest();
    let pool = match opts.workers {
        Some(w) => WorkerPool::new(w),
        None => WorkerPool::auto(),
    };
    if !opts.quiet {
        println!(
            "topo sweep `{}` [{digest}]: {} cells on {} workers",
            spec.name,
            spec.cells.len(),
            pool.workers()
        );
    }
    let indices: Vec<usize> = (0..spec.cells.len()).collect();
    let sim_threads = opts.sim_threads.unwrap_or(1);
    let results = pool.try_map(indices.clone(), {
        let spec = spec.clone();
        move |i: &usize| (*i, run_cell(&spec, *i, sim_threads, collect))
    });
    let mut done: BTreeMap<u64, Json> = BTreeMap::new();
    // Per-cell telemetry, keyed by cell index: folding in index order
    // makes the merged snapshot worker-count invariant.
    #[cfg(feature = "telemetry")]
    let mut teles: BTreeMap<
        u64,
        Box<(
            dra_telemetry::NetScopeSnapshot,
            Vec<dra_telemetry::TraceEvent>,
        )>,
    > = BTreeMap::new();
    let mut failed = 0;
    for res in results {
        match res {
            Ok((i, (cell, _tele))) => {
                done.insert(i as u64, cell);
                #[cfg(feature = "telemetry")]
                if let Some(t) = _tele {
                    teles.insert(i as u64, t);
                }
            }
            Err(p) => {
                // Key the error by the *cell index* the panicked item
                // carried — not by the slot it occupies in the result
                // vector, which only coincides with the cell index
                // while the submitted work list is the identity.
                failed += 1;
                let cell_index = indices[p.index];
                done.insert(
                    cell_index as u64,
                    Json::obj(vec![
                        ("cell", Json::Num(cell_index as f64)),
                        ("id", Json::Str(spec.cells[cell_index].id.clone())),
                        ("error", Json::Str(p.message)),
                    ]),
                );
            }
        }
    }
    let artifact = Json::obj(vec![
        ("format", Json::Str(ARTIFACT_FORMAT.into())),
        ("digest", Json::Str(digest)),
        ("spec", spec.manifest()),
        ("cells", Json::Arr(done.into_values().collect())),
    ]);
    let text = artifact.to_string_pretty();
    validate_artifact(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    if let Some(path) = &opts.out {
        write_atomic(path, &text)?;
        if !opts.quiet {
            println!("wrote {} ({} bytes)", path.display(), text.len());
        }
    }
    #[cfg(feature = "telemetry")]
    if collect {
        let mut snap: Option<dra_telemetry::NetScopeSnapshot> = None;
        let mut trace: Vec<dra_telemetry::TraceEvent> = Vec::new();
        for boxed in teles.into_values() {
            let (s, t) = *boxed;
            match &mut snap {
                None => snap = Some(s),
                Some(acc) => acc.merge(&s),
            }
            trace.extend(t);
        }
        if let Some(path) = &opts.telemetry_out {
            let text = snap
                .as_ref()
                .map(dra_telemetry::NetScopeSnapshot::to_json_string)
                .unwrap_or_else(|| dra_telemetry::NetScopeSnapshot::default().to_json_string());
            write_atomic(path, &text)?;
            if !opts.quiet {
                println!(
                    "wrote telemetry snapshot {} ({} bytes)",
                    path.display(),
                    text.len()
                );
            }
        }
        if let Some(path) = &opts.trace_out {
            let text = dra_telemetry::chrome_trace_json(&trace);
            write_atomic(path, &text)?;
            if !opts.quiet {
                println!(
                    "wrote flow trace {} ({} events)",
                    path.display(),
                    trace.len()
                );
            }
        }
    }
    Ok(TopoOutcome {
        artifact_text: text,
        path: opts.out.clone(),
        cells: spec.cells.len(),
        failed,
    })
}

/// `k` indices spread evenly over `0..n` (deterministic fault-target
/// selection: same targets for both architectures of a twin pair).
pub fn spread_targets(n: usize, k: u32) -> Vec<u32> {
    (0..k as usize)
        .map(|i| (i * n / k as usize) as u32)
        .collect()
}

/// Build the fully-wired network for one `(cell, replication)` —
/// topology, flows, fault timelines — ready for
/// [`NetworkSim::simulation`]. Public so examples, benches, and the
/// invariant tests exercise exactly the engine's construction path.
pub fn build_network(cell: &TopoCellSpec, master_seed: u64, replication: u32) -> NetworkSim {
    let sim_seed = derive_seed(
        master_seed,
        cell.seed_group,
        replication as u64,
        Stream::Simulation,
    );
    let fault_seed = derive_seed(
        master_seed,
        cell.seed_group,
        replication as u64,
        Stream::Faults,
    );
    let topo = Topology::build(cell.topology);
    let cfg = NetConfig {
        link: cell.link,
        packet_bytes: cell.flows.packet_bytes,
        traffic_stop_s: cell.horizon_s - cell.drain_s,
        ..NetConfig::default()
    };
    // Flow placement from the cell's private stream: distinct
    // (src, dst) host pairs, identical across the BDR/DRA twins.
    let mut draws = NodeSeedStream::new(sim_seed, FLOW_TAG);
    let mut flows = Vec::with_capacity(cell.flows.n_flows as usize);
    for _ in 0..cell.flows.n_flows {
        let src = topo.hosts[(draws.next().unwrap() % topo.hosts.len() as u64) as usize];
        let dst = loop {
            let d = topo.hosts[(draws.next().unwrap() % topo.hosts.len() as u64) as usize];
            if d != src {
                break d;
            }
        };
        flows.push(Flow {
            src,
            dst,
            rate_pps: cell.flows.rate_pps,
        });
    }
    let n_nodes = topo.n_nodes();
    let mut net = NetworkSim::new(topo, cell.arch, cfg, flows, sim_seed);
    match cell.faults {
        TopoFaultSpec::None => {}
        TopoFaultSpec::FailRouters { k, at_s } => {
            let mut sc = NetScenario::new();
            for node in spread_targets(n_nodes, k) {
                let n_lcs = net.node(node).n_lcs() as u16;
                for lc in (0..n_lcs).step_by(2) {
                    sc = sc.at(
                        at_s,
                        NetAction::FailComponent {
                            node,
                            lc,
                            kind: ComponentKind::Sru,
                        },
                    );
                }
            }
            net.set_scenario(&sc);
        }
        TopoFaultSpec::FailLinks { k, at_s } => {
            let mut cables: Vec<(u32, u32)> = Vec::new();
            for a in 0..n_nodes as u32 {
                for &b in &net.topo.adj[a as usize] {
                    if a < b {
                        cables.push((a, b));
                    }
                }
            }
            let mut sc = NetScenario::new();
            for idx in spread_targets(cables.len(), k.min(cables.len() as u32)) {
                let (a, b) = cables[idx as usize];
                sc = sc.at(at_s, NetAction::FailLink { a, b });
            }
            net.set_scenario(&sc);
        }
        TopoFaultSpec::Renewal {
            delay_scale,
            repair_h,
        } => {
            let process = FaultProcess {
                injector: FaultInjector::new(repair_h, FaultGranularity::PerComponent),
                delay_scale,
                repair: true,
            };
            for node in 0..n_nodes as u32 {
                let mut rng = SmallRng::seed_from_u64(node_seed(fault_seed, node as u64));
                let n_lcs = net.node(node).n_lcs();
                let timeline = process.sample(n_lcs, cell.horizon_s, &mut rng);
                net.set_node_fault_schedule(node, &timeline);
            }
        }
    }
    net
}

/// Network-scope sampling density for CLI-driven collection: every
/// 64th packet gets hop-resolved flow spans (counters, forensics, and
/// the profiler are unsampled — they see everything).
#[cfg(feature = "telemetry")]
const TELEMETRY_SAMPLE_EVERY: u64 = 64;

/// One cell's collected telemetry: the merged snapshot of its
/// replications plus their concatenated flow-trace events.
#[cfg(feature = "telemetry")]
type CellTele = Option<
    Box<(
        dra_telemetry::NetScopeSnapshot,
        Vec<dra_telemetry::TraceEvent>,
    )>,
>;
#[cfg(not(feature = "telemetry"))]
type CellTele = ();

/// Run every replication of one cell and reduce to its JSON record
/// (plus, when `collect` is set, its telemetry).
fn run_cell(spec: &TopoSpec, index: usize, sim_threads: usize, collect: bool) -> (Json, CellTele) {
    #[cfg(not(feature = "telemetry"))]
    let _ = collect;
    let cell = &spec.cells[index];
    let mut injected = 0u64;
    let mut delivered = 0u64;
    let mut in_flight = 0u64;
    let mut drops = [0u64; 8];
    let mut delivery = Welford::new();
    let mut flow_avail = Welford::new();
    let mut latency = Welford::new();
    let mut hops = Welford::new();
    let (mut n_nodes, mut n_links) = (0, 0);
    #[cfg(feature = "telemetry")]
    let mut cell_tele: CellTele = None;
    for rep in 0..cell.replications {
        let mut net = build_network(cell, spec.master_seed, rep);
        net.cfg.sim_threads = sim_threads;
        #[cfg(feature = "telemetry")]
        if collect {
            // The hub (flight-recorder ring + anomaly freeze) is
            // thread-local: arm it on whichever pool worker runs this
            // cell. Telemetry observes without steering, so the
            // artifact bytes do not change.
            if !dra_telemetry::enabled() {
                dra_telemetry::enable(dra_telemetry::Config {
                    sample_every: TELEMETRY_SAMPLE_EVERY,
                    ..dra_telemetry::Config::default()
                });
            }
            net.enable_net_telemetry(TELEMETRY_SAMPLE_EVERY);
        }
        n_nodes = net.topo.n_nodes();
        n_links = net.topo.n_links();
        let sim_seed = derive_seed(
            spec.master_seed,
            cell.seed_group,
            rep as u64,
            Stream::Simulation,
        );
        let net = net.run(sim_seed, cell.horizon_s);
        let s = &net.stats;
        assert!(s.conserved(), "{}: packet conservation violated", cell.id);
        injected += s.injected;
        delivered += s.delivered;
        in_flight += s.in_flight;
        for (acc, d) in drops.iter_mut().zip(s.drops) {
            *acc += d;
        }
        delivery.push(s.delivery_ratio());
        flow_avail.push(s.flow_availability(0.99));
        if s.delivered > 0 {
            latency.push(s.latency.mean());
            hops.push(s.hops.mean());
        }
        #[cfg(feature = "telemetry")]
        if collect {
            // Distinct Perfetto pid/arrow namespaces per (cell, rep):
            // pure functions of the indices, so the merged trace is
            // worker- and sim-thread-invariant.
            let mut net = net;
            let report = net
                .export_net_telemetry(
                    cell.horizon_s,
                    (index as u32) * 4096,
                    ((index as u64 * 1024) + rep as u64) << 40,
                )
                .expect("collector was enabled above");
            match &mut cell_tele {
                None => cell_tele = Some(Box::new((report.snapshot, report.trace))),
                Some(acc) => {
                    acc.0.merge(&report.snapshot);
                    acc.1.extend(report.trace);
                }
            }
        }
    }
    let record = Json::obj(vec![
        ("cell", Json::Num(index as f64)),
        ("id", Json::Str(cell.id.clone())),
        ("arch", Json::Str(cell.arch.label().into())),
        ("topology", Json::Str(cell.topology.label())),
        ("nodes", Json::Num(n_nodes as f64)),
        ("links", Json::Num(n_links as f64)),
        ("replications", Json::Num(cell.replications as f64)),
        ("injected", Json::Num(injected as f64)),
        ("delivered", Json::Num(delivered as f64)),
        ("in_flight", Json::Num(in_flight as f64)),
        (
            "drops",
            Json::Obj(
                NetDropCause::ALL
                    .iter()
                    .map(|c| (c.name().to_string(), Json::Num(drops[c.index()] as f64)))
                    .collect(),
            ),
        ),
        ("delivery_ratio", welford_json(&delivery)),
        ("flow_availability", welford_json(&flow_avail)),
        ("latency_s", welford_json(&latency)),
        ("hops", welford_json(&hops)),
    ]);
    #[cfg(feature = "telemetry")]
    return (record, cell_tele);
    #[cfg(not(feature = "telemetry"))]
    (record, ())
}

fn welford_json(w: &Welford) -> Json {
    if w.count() == 0 {
        return Json::obj(vec![("n", Json::Num(0.0))]);
    }
    let ci = if w.count() >= 2 {
        w.ci_half_width(1.96)
    } else {
        0.0
    };
    Json::obj(vec![
        ("n", Json::Num(w.count() as f64)),
        ("mean", Json::Num(w.mean())),
        ("ci95", Json::Num(ci)),
        ("min", Json::Num(w.min())),
        ("max", Json::Num(w.max())),
    ])
}

fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Structural validation of a `dra-topo/v1` document, including the
/// network packet-conservation invariant per cell. Returns
/// `(cells, error_cells)`.
pub fn validate_artifact(text: &str) -> Result<(usize, usize), String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    if doc.get("format").and_then(Json::as_str) != Some(ARTIFACT_FORMAT) {
        return Err(format!(
            "format is {:?}, expected {ARTIFACT_FORMAT:?}",
            doc.get("format")
        ));
    }
    doc.get("digest")
        .and_then(Json::as_str)
        .filter(|d| d.len() == 16)
        .ok_or("missing/malformed digest")?;
    let spec_cells = doc
        .get("spec")
        .and_then(|s| s.get("cells"))
        .and_then(Json::as_arr)
        .ok_or("missing spec manifest cells")?;
    let cells = doc
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or("missing cells array")?;
    if cells.len() != spec_cells.len() {
        return Err(format!(
            "artifact has {} cells but the spec declares {}",
            cells.len(),
            spec_cells.len()
        ));
    }
    let mut errors = 0;
    for (i, cell) in cells.iter().enumerate() {
        let idx = cell
            .get("cell")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("cell {i}: missing index"))?;
        if idx != i as u64 {
            return Err(format!("cell {i}: out of order (index {idx})"));
        }
        cell.get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("cell {i}: missing id"))?;
        if cell.get("error").is_some() {
            errors += 1;
            continue;
        }
        let num = |key: &str| -> Result<u64, String> {
            cell.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("cell {i}: missing {key}"))
        };
        let injected = num("injected")?;
        let delivered = num("delivered")?;
        let in_flight = num("in_flight")?;
        let dropped: u64 = match cell.get("drops") {
            Some(Json::Obj(pairs)) => pairs.iter().filter_map(|(_, v)| v.as_u64()).sum(),
            _ => return Err(format!("cell {i}: missing drops object")),
        };
        if injected != delivered + dropped + in_flight {
            return Err(format!(
                "cell {i}: conservation violated: {injected} != {delivered} + {dropped} + {in_flight}"
            ));
        }
        let ratio = cell
            .get("delivery_ratio")
            .and_then(|d| d.get("mean"))
            .and_then(Json::as_f64)
            .unwrap_or(1.0);
        if !(0.0..=1.0).contains(&ratio) {
            return Err(format!("cell {i}: delivery ratio {ratio} outside [0,1]"));
        }
    }
    Ok((cells.len(), errors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::spec::FlowSpec;
    use crate::topology::TopologyKind;
    use dra_core::handle::ArchKind;

    fn tiny_spec() -> TopoSpec {
        let cell = |id: &str, arch, group| TopoCellSpec {
            id: id.into(),
            arch,
            topology: TopologyKind::Mesh2D { rows: 3, cols: 3 },
            link: LinkConfig::default(),
            flows: FlowSpec {
                n_flows: 4,
                rate_pps: 20_000.0,
                packet_bytes: 700,
            },
            faults: TopoFaultSpec::FailRouters { k: 2, at_s: 2e-3 },
            horizon_s: 8e-3,
            drain_s: 2e-3,
            replications: 2,
            seed_group: group,
        };
        TopoSpec {
            name: "tiny".into(),
            description: "engine test".into(),
            master_seed: 0xD8A,
            cells: vec![
                cell("bdr/mesh/r2", ArchKind::Bdr, 0),
                cell("dra/mesh/r2", ArchKind::Dra, 0),
            ],
        }
    }

    #[test]
    fn artifact_is_worker_count_invariant() {
        let spec = tiny_spec();
        let run_with = |w| {
            run(
                &spec,
                &TopoRunOptions {
                    workers: Some(w),
                    sim_threads: None,
                    out: None,
                    quiet: true,
                    ..Default::default()
                },
            )
            .unwrap()
            .artifact_text
        };
        let w1 = run_with(1);
        let w4 = run_with(4);
        assert_eq!(w1, w4, "artifact must be byte-identical at 1 vs 4 workers");
        let (cells, errors) = validate_artifact(&w1).unwrap();
        assert_eq!((cells, errors), (2, 0));
    }

    #[test]
    fn twin_cells_share_traffic_and_dra_dominates() {
        let spec = tiny_spec();
        let out = run(
            &spec,
            &TopoRunOptions {
                workers: Some(1),
                sim_threads: None,
                out: None,
                quiet: true,
                ..Default::default()
            },
        )
        .unwrap();
        let doc = parse(&out.artifact_text).unwrap();
        let cells = doc.get("cells").and_then(Json::as_arr).unwrap();
        let injected: Vec<u64> = cells
            .iter()
            .map(|c| c.get("injected").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(injected[0], injected[1], "twins share the arrival stream");
        let ratio = |c: &Json| {
            c.get("delivery_ratio")
                .and_then(|d| d.get("mean"))
                .and_then(Json::as_f64)
                .unwrap()
        };
        assert!(
            ratio(&cells[1]) > ratio(&cells[0]),
            "DRA ({}) must beat BDR ({}) under router degradation",
            ratio(&cells[1]),
            ratio(&cells[0])
        );
    }

    #[test]
    fn panicked_cells_are_keyed_by_cell_index() {
        let mut spec = tiny_spec();
        // Passes spec validation but panics during topology build:
        // the mesh generator rejects single-row grids.
        spec.cells[0].topology = TopologyKind::Mesh2D { rows: 1, cols: 9 };
        for workers in [1, 4] {
            let out = run(
                &spec,
                &TopoRunOptions {
                    workers: Some(workers),
                    sim_threads: None,
                    out: None,
                    quiet: true,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(out.failed, 1, "workers = {workers}");
            let doc = parse(&out.artifact_text).unwrap();
            let cells = doc.get("cells").and_then(Json::as_arr).unwrap();
            let bad = &cells[0];
            assert_eq!(bad.get("cell").and_then(Json::as_u64), Some(0));
            assert_eq!(bad.get("id").and_then(Json::as_str), Some("bdr/mesh/r2"));
            assert!(
                bad.get("error")
                    .and_then(Json::as_str)
                    .unwrap()
                    .contains("mesh needs rows"),
                "error cell must carry the panic message"
            );
            assert!(cells[1].get("error").is_none(), "healthy cell untouched");
            let (n, errors) = validate_artifact(&out.artifact_text).unwrap();
            assert_eq!((n, errors), (2, 1));
        }
    }

    #[test]
    fn artifact_is_sim_thread_invariant() {
        let spec = tiny_spec();
        let run_with = |t| {
            run(
                &spec,
                &TopoRunOptions {
                    workers: Some(2),
                    sim_threads: Some(t),
                    out: None,
                    quiet: true,
                    ..Default::default()
                },
            )
            .unwrap()
            .artifact_text
        };
        let serial = run_with(1);
        assert_eq!(
            serial,
            run_with(2),
            "artifact must be byte-identical at --sim-threads 2"
        );
        assert_eq!(
            serial,
            run_with(4),
            "artifact must be byte-identical at --sim-threads 4"
        );
    }

    #[test]
    fn spread_targets_cover_the_range() {
        assert_eq!(spread_targets(20, 4), vec![0, 5, 10, 15]);
        assert_eq!(spread_targets(16, 1), vec![0]);
        assert!(spread_targets(9, 3).iter().all(|&t| t < 9));
    }
}
