//! # dra-topo
//!
//! The network-of-routers simulation layer: composes the paper's
//! per-router dependability results (DRA vs BDR) into **network**
//! reliability, the question the fat-tree/mesh resiliency literature
//! asks one level up.
//!
//! * [`topology`] — fat-tree(k), 2-D mesh, and Barabási–Albert
//!   generators with deterministic port numbering.
//! * [`routes`] — min-hop routes (BFS, lowest-id tie-break) compiled
//!   into one production [`Dir248Fib`](dra_net::fib::Dir248Fib) per
//!   node.
//! * [`link`] — fixed-latency, fluid-FIFO serialization links with
//!   backlog tail drop and whole-cable failures.
//! * [`net`] — the co-simulation model: N
//!   [`RouterHandle`](dra_core::handle::RouterHandle)-wrapped BDR/DRA
//!   routers advanced lazily on one shared DES clock, multi-hop flows,
//!   per-node fault timelines, and composed drop accounting.
//! * [`pdes`] — conservative parallel execution of the same model:
//!   per-router logical processes on barrier windows (lookahead = the
//!   minimum attached link latency), byte-identical to the serial
//!   engine at any thread count (`NetConfig::sim_threads`).
//! * [`chain`] — the interned parent-pointer provenance arena behind
//!   the parallel engine's tie ordering (zero allocations per hop).
//! * [`stats`] — network metrics: packet conservation, end-to-end
//!   delivery ratio, per-flow availability.
//! * [`seeds`] — the per-node SplitMix64 seed coordinate keeping N
//!   co-simulated routers' randomness pairwise disjoint.
//! * [`spec`] / [`engine`] / [`registry`] — declarative sweeps over
//!   topology × faults × architecture, executed on the campaign worker
//!   pool into byte-reproducible `dra-topo/v1` artifacts.
//! * [`telemetry`] (feature `telemetry`) — network-scope
//!   observability: per-router counters, hop-resolved flow spans with
//!   Perfetto export, the fault-forensics ledger, and the PDES engine
//!   profiler, exported as a `dra-topo-telemetry/v1` snapshot whose
//!   deterministic section is byte-identical at any `sim_threads`.
//!
//! See `examples/network_resilience.rs` and the `topo` CLI
//! (`cargo run --release -p dra-topo --bin topo -- --help`).

#![warn(missing_docs)]

pub mod chain;
pub mod engine;
pub mod link;
pub mod net;
pub mod pdes;
pub mod registry;
pub mod routes;
pub mod seeds;
pub mod spec;
pub mod stats;
#[cfg(feature = "telemetry")]
pub mod telemetry;
pub mod topology;

pub use engine::{build_network, run, TopoOutcome, TopoRunOptions};
pub use net::{Flow, NetAction, NetConfig, NetScenario, NetworkSim};
pub use spec::{FlowSpec, TopoCellSpec, TopoFaultSpec, TopoSpec};
pub use stats::{NetDropCause, NetStats};
pub use topology::{Topology, TopologyKind};
