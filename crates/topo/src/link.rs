//! The inter-router link model: fixed propagation latency, a fluid
//! FIFO serialization queue per direction, and an up/down state.
//!
//! A directed link is busy until `busy_until`; a packet arriving at
//! `t` starts serializing at `max(t, busy_until)` and finishes
//! `bytes·8 / bandwidth` later. If that would queue the packet more
//! than `max_backlog_s` behind real time the link is congested and the
//! packet is dropped — a fluid stand-in for a finite egress buffer
//! that keeps per-link state to two scalars.

/// Link parameters (uniform across a topology).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// One-way propagation delay, seconds.
    pub latency_s: f64,
    /// Serialization rate, bits per second.
    pub bandwidth_bps: f64,
    /// Maximum tolerated serialization backlog before tail drop,
    /// seconds of queued transmission time.
    pub max_backlog_s: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency_s: 10e-6,
            bandwidth_bps: 10e9,
            max_backlog_s: 500e-6,
        }
    }
}

/// Mutable state of one *directed* link.
#[derive(Debug, Clone, Copy)]
pub struct LinkState {
    /// Serialization queue drains at this absolute time.
    pub busy_until: f64,
    /// Both directions of a cable fail together; each carries a copy.
    pub up: bool,
}

impl Default for LinkState {
    fn default() -> Self {
        LinkState {
            busy_until: 0.0,
            up: true,
        }
    }
}

/// Outcome of offering a packet to a directed link at time `now`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkOffer {
    /// Accepted; arrives at the far end after `delay_s`.
    Sent {
        /// Queueing + serialization + propagation, from `now`.
        delay_s: f64,
    },
    /// The link is administratively/physically down.
    Down,
    /// The serialization backlog exceeded `max_backlog_s`.
    Congested,
}

impl LinkState {
    /// Set the up/down state. A down → up transition clears
    /// `busy_until`: the serialization queue that was pending when the
    /// cable was cut died with the cut, so a repaired link starts with
    /// an idle wire rather than delaying (or tail-dropping) its first
    /// packets against a stale pre-cut backlog.
    pub fn set_up(&mut self, up: bool) {
        if up && !self.up {
            self.busy_until = 0.0;
        }
        self.up = up;
    }

    /// Offer `bytes` to this direction at `now` under `cfg`.
    pub fn offer(&mut self, cfg: &LinkConfig, now: f64, bytes: u32) -> LinkOffer {
        if !self.up {
            return LinkOffer::Down;
        }
        let start = self.busy_until.max(now);
        let finish = start + bytes as f64 * 8.0 / cfg.bandwidth_bps;
        if finish - now > cfg.max_backlog_s {
            return LinkOffer::Congested;
        }
        self.busy_until = finish;
        LinkOffer::Sent {
            delay_s: finish - now + cfg.latency_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_backlog_and_congestion() {
        let cfg = LinkConfig {
            latency_s: 1e-6,
            bandwidth_bps: 8e9, // 1 ns per byte
            max_backlog_s: 2e-6,
        };
        let mut l = LinkState::default();
        // 1000 B = 1 µs of wire time.
        assert_eq!(l.offer(&cfg, 0.0, 1000), LinkOffer::Sent { delay_s: 2e-6 });
        // Second packet queues behind the first: 2 µs backlog, at limit.
        assert_eq!(l.offer(&cfg, 0.0, 1000), LinkOffer::Sent { delay_s: 3e-6 });
        // Third exceeds the backlog bound.
        assert_eq!(l.offer(&cfg, 0.0, 1000), LinkOffer::Congested);
        // After the queue drains, service resumes.
        assert!(matches!(l.offer(&cfg, 10e-6, 1000), LinkOffer::Sent { .. }));
        l.up = false;
        assert_eq!(l.offer(&cfg, 20e-6, 1000), LinkOffer::Down);
    }

    #[test]
    fn repair_clears_precut_backlog() {
        let cfg = LinkConfig {
            latency_s: 1e-6,
            bandwidth_bps: 8e9, // 1 ns per byte
            max_backlog_s: 2e-6,
        };
        let mut l = LinkState::default();
        // Two 1000 B packets at t = 0 queue 2 µs of backlog
        // (busy_until = 2 µs), then the cable is cut while busy.
        assert!(matches!(l.offer(&cfg, 0.0, 1000), LinkOffer::Sent { .. }));
        assert!(matches!(l.offer(&cfg, 0.0, 1000), LinkOffer::Sent { .. }));
        assert_eq!(l.busy_until, 2e-6);
        l.set_up(false);
        assert_eq!(l.offer(&cfg, 0.5e-6, 1000), LinkOffer::Down);
        // Repair at t = 1 µs, still before the pre-cut queue would
        // have drained. The first post-repair packet must see an idle
        // wire: serialization (1 µs) + propagation (1 µs) only, not
        // the stale 1 µs of dead backlog on top.
        l.set_up(true);
        assert_eq!(l.busy_until, 0.0, "repair must clear the dead queue");
        assert_eq!(l.offer(&cfg, 1e-6, 1000), LinkOffer::Sent { delay_s: 2e-6 });
        // Down → down and up → up transitions leave the queue alone.
        let drained = l.busy_until;
        l.set_up(true);
        assert_eq!(l.busy_until, drained);
        l.set_up(false);
        l.set_up(false);
        assert_eq!(l.busy_until, drained);
    }
}
