//! The inter-router link model: fixed propagation latency, a fluid
//! FIFO serialization queue per direction, and an up/down state.
//!
//! A directed link is busy until `busy_until`; a packet arriving at
//! `t` starts serializing at `max(t, busy_until)` and finishes
//! `bytes·8 / bandwidth` later. If that would queue the packet more
//! than `max_backlog_s` behind real time the link is congested and the
//! packet is dropped — a fluid stand-in for a finite egress buffer
//! that keeps per-link state to three scalars.
//!
//! Propagation latency lives **per directed link** (seeded uniformly
//! from [`LinkConfig::latency_s`], overridable via
//! [`NetworkSim::set_link_latency`](crate::net::NetworkSim::set_link_latency)),
//! so heterogeneous topologies — a slow WAN edge on a fast mesh — are
//! expressible; the parallel engine derives its conservative lookahead
//! from the *minimum* attached latency ([`LinkArena::min_latency`]).

/// Link parameters (uniform across a topology).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// One-way propagation delay, seconds (the uniform default; see
    /// the module docs for per-link overrides).
    pub latency_s: f64,
    /// Serialization rate, bits per second.
    pub bandwidth_bps: f64,
    /// Maximum tolerated serialization backlog before tail drop,
    /// seconds of queued transmission time.
    pub max_backlog_s: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency_s: 10e-6,
            bandwidth_bps: 10e9,
            max_backlog_s: 500e-6,
        }
    }
}

/// Mutable state of one *directed* link.
#[derive(Debug, Clone, Copy)]
pub struct LinkState {
    /// Serialization queue drains at this absolute time.
    pub busy_until: f64,
    /// This direction's propagation latency, seconds.
    pub latency_s: f64,
    /// Both directions of a cable fail together; each carries a copy.
    pub up: bool,
}

impl Default for LinkState {
    fn default() -> Self {
        LinkState::new(LinkConfig::default().latency_s)
    }
}

/// Outcome of offering a packet to a directed link at time `now`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkOffer {
    /// Accepted; arrives at the far end after `delay_s`.
    Sent {
        /// Queueing + serialization + propagation, from `now`.
        delay_s: f64,
    },
    /// The link is administratively/physically down.
    Down,
    /// The serialization backlog exceeded `max_backlog_s`.
    Congested,
}

impl LinkState {
    /// An idle, up link with the given propagation latency.
    pub fn new(latency_s: f64) -> Self {
        assert!(
            latency_s.is_finite() && latency_s > 0.0,
            "link latency must be positive and finite, got {latency_s}"
        );
        LinkState {
            busy_until: 0.0,
            latency_s,
            up: true,
        }
    }

    /// Set the up/down state. A down → up transition clears
    /// `busy_until`: the serialization queue that was pending when the
    /// cable was cut died with the cut, so a repaired link starts with
    /// an idle wire rather than delaying (or tail-dropping) its first
    /// packets against a stale pre-cut backlog.
    pub fn set_up(&mut self, up: bool) {
        if up && !self.up {
            self.busy_until = 0.0;
        }
        self.up = up;
    }

    /// Offer `bytes` to this direction at `now` under `cfg`.
    pub fn offer(&mut self, cfg: &LinkConfig, now: f64, bytes: u32) -> LinkOffer {
        if !self.up {
            return LinkOffer::Down;
        }
        let start = self.busy_until.max(now);
        let finish = start + bytes as f64 * 8.0 / cfg.bandwidth_bps;
        if finish - now > cfg.max_backlog_s {
            return LinkOffer::Congested;
        }
        self.busy_until = finish;
        LinkOffer::Sent {
            delay_s: finish - now + self.latency_s,
        }
    }
}

/// Every directed link of a network in one flat slab, indexed by
/// `(node, port)` through a per-node offset table — one contiguous
/// allocation instead of N inner `Vec`s, and one place to answer
/// "what is the minimum attached latency?" for the parallel engine's
/// adaptive window width.
#[derive(Debug, Clone)]
pub struct LinkArena {
    states: Vec<LinkState>,
    /// `offsets[n]..offsets[n+1]` is node `n`'s port range.
    offsets: Vec<u32>,
}

impl LinkArena {
    /// Build from per-node degrees, all links idle and up at
    /// `latency_s`.
    pub fn from_degrees(degrees: impl Iterator<Item = usize>, latency_s: f64) -> LinkArena {
        let mut offsets = vec![0u32];
        let mut total = 0u32;
        for d in degrees {
            total += d as u32;
            offsets.push(total);
        }
        LinkArena {
            states: vec![LinkState::new(latency_s); total as usize],
            offsets,
        }
    }

    /// Reassemble from per-node link vectors (the parallel engine's
    /// decomposition, inverted).
    pub fn from_per_node(parts: impl Iterator<Item = Vec<LinkState>>) -> LinkArena {
        let mut offsets = vec![0u32];
        let mut states = Vec::new();
        for p in parts {
            states.extend_from_slice(&p);
            offsets.push(states.len() as u32);
        }
        LinkArena { states, offsets }
    }

    /// Split into one owned `Vec<LinkState>` per node (consumes the
    /// arena; used once per run by the parallel decomposition).
    pub fn into_per_node(self) -> Vec<Vec<LinkState>> {
        let mut out = Vec::with_capacity(self.offsets.len() - 1);
        let mut states = self.states.into_iter();
        for w in self.offsets.windows(2) {
            let n = (w[1] - w[0]) as usize;
            out.push(states.by_ref().take(n).collect());
        }
        out
    }

    /// Directed link out of `node` via `port`.
    #[inline]
    pub fn at(&self, node: u32, port: u16) -> &LinkState {
        &self.states[self.offsets[node as usize] as usize + port as usize]
    }

    /// Mutable access to the directed link out of `node` via `port`.
    #[inline]
    pub fn at_mut(&mut self, node: u32, port: u16) -> &mut LinkState {
        &mut self.states[self.offsets[node as usize] as usize + port as usize]
    }

    /// The minimum propagation latency over every directed link, or
    /// `None` for a linkless (single-node) network. This is the
    /// conservative lookahead: every cross-router handoff charges at
    /// least this much propagation.
    pub fn min_latency(&self) -> Option<f64> {
        self.states
            .iter()
            .map(|s| s.latency_s)
            .min_by(f64::total_cmp)
    }

    /// Total directed links.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when no links exist.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_backlog_and_congestion() {
        let cfg = LinkConfig {
            latency_s: 1e-6,
            bandwidth_bps: 8e9, // 1 ns per byte
            max_backlog_s: 2e-6,
        };
        let mut l = LinkState::new(cfg.latency_s);
        // 1000 B = 1 µs of wire time.
        assert_eq!(l.offer(&cfg, 0.0, 1000), LinkOffer::Sent { delay_s: 2e-6 });
        // Second packet queues behind the first: 2 µs backlog, at limit.
        assert_eq!(l.offer(&cfg, 0.0, 1000), LinkOffer::Sent { delay_s: 3e-6 });
        // Third exceeds the backlog bound.
        assert_eq!(l.offer(&cfg, 0.0, 1000), LinkOffer::Congested);
        // After the queue drains, service resumes.
        assert!(matches!(l.offer(&cfg, 10e-6, 1000), LinkOffer::Sent { .. }));
        l.up = false;
        assert_eq!(l.offer(&cfg, 20e-6, 1000), LinkOffer::Down);
    }

    #[test]
    fn per_link_latency_overrides_config() {
        let cfg = LinkConfig {
            latency_s: 1e-6,
            bandwidth_bps: 8e9,
            max_backlog_s: 2e-6,
        };
        // The state's own latency, not the config's, prices the hop.
        let mut slow = LinkState::new(50e-6);
        assert_eq!(
            slow.offer(&cfg, 0.0, 1000),
            LinkOffer::Sent { delay_s: 51e-6 }
        );
    }

    #[test]
    fn repair_clears_precut_backlog() {
        let cfg = LinkConfig {
            latency_s: 1e-6,
            bandwidth_bps: 8e9, // 1 ns per byte
            max_backlog_s: 2e-6,
        };
        let mut l = LinkState::new(cfg.latency_s);
        // Two 1000 B packets at t = 0 queue 2 µs of backlog
        // (busy_until = 2 µs), then the cable is cut while busy.
        assert!(matches!(l.offer(&cfg, 0.0, 1000), LinkOffer::Sent { .. }));
        assert!(matches!(l.offer(&cfg, 0.0, 1000), LinkOffer::Sent { .. }));
        assert_eq!(l.busy_until, 2e-6);
        l.set_up(false);
        assert_eq!(l.offer(&cfg, 0.5e-6, 1000), LinkOffer::Down);
        // Repair at t = 1 µs, still before the pre-cut queue would
        // have drained. The first post-repair packet must see an idle
        // wire: serialization (1 µs) + propagation (1 µs) only, not
        // the stale 1 µs of dead backlog on top.
        l.set_up(true);
        assert_eq!(l.busy_until, 0.0, "repair must clear the dead queue");
        assert_eq!(l.offer(&cfg, 1e-6, 1000), LinkOffer::Sent { delay_s: 2e-6 });
        // Down → down and up → up transitions leave the queue alone.
        let drained = l.busy_until;
        l.set_up(true);
        assert_eq!(l.busy_until, drained);
        l.set_up(false);
        l.set_up(false);
        assert_eq!(l.busy_until, drained);
    }

    #[test]
    fn arena_indexes_and_round_trips() {
        let mut arena = LinkArena::from_degrees([2usize, 3, 1].into_iter(), 10e-6);
        assert_eq!(arena.len(), 6);
        arena.at_mut(1, 2).set_up(false);
        arena.at_mut(2, 0).latency_s = 99e-6;
        assert!(!arena.at(1, 2).up);
        assert!(arena.at(0, 0).up && arena.at(1, 1).up);
        assert_eq!(arena.min_latency(), Some(10e-6));
        let parts = arena.clone().into_per_node();
        assert_eq!(parts.iter().map(Vec::len).collect::<Vec<_>>(), [2, 3, 1]);
        assert!(!parts[1][2].up);
        let back = LinkArena::from_per_node(parts.into_iter());
        assert!(!back.at(1, 2).up);
        assert_eq!(back.at(2, 0).latency_s, 99e-6);
        assert_eq!(back.len(), 6);
    }
}
