//! The network-of-routers DES model.
//!
//! [`NetworkSim`] co-simulates N routers — each a
//! [`RouterHandle`]-wrapped BDR or DRA simulation — on one shared
//! [`dra_des`] clock. End-to-end packets hop router → link → router:
//! at every transit the owning router is lazily advanced to "now", its
//! current linecard serviceability consulted (so faults in a router's
//! private timeline shape network forwarding), the node's
//! topology-derived DIR-24-8 FIB resolves the egress port, and the
//! link model charges serialization + propagation.
//!
//! Fault surfaces, composed exactly as the single-router layer defines
//! them:
//! * **BDR** — any failed unit on a linecard removes that port from
//!   service; transit through it drops.
//! * **DRA** — PDLU/SRU/LFE failures are EIB-covered when a helper
//!   card exists; covered transits pay an EIB serialization charge
//!   against a per-node promised-bandwidth budget and drop as
//!   [`NetDropCause::CoverageSaturated`] when it oversubscribes.
//! * **Links** — fail as whole cables (both directions) and tail-drop
//!   on serialization backlog.
//!
//! Determinism: the only RNG draws are flow inter-arrival times on the
//! network simulation's own seeded RNG; embedded routers draw from
//! private [`node_seed`](crate::seeds::node_seed) streams; everything
//! else is pure state. One seed ⇒ one event history.

use crate::link::{LinkArena, LinkConfig, LinkOffer};
use crate::routes::{compile_fibs, node_addr, RouteTables};
use crate::stats::{NetDropCause, NetStats};
use crate::topology::Topology;
use dra_core::handle::{ArchKind, RouterHandle};
use dra_core::scenario::{Action, Scenario};
use dra_des::random::exponential;
use dra_des::sim::{Ctx, Model, Simulation};
use dra_net::fib::{Dir248Fib, Fib};
use dra_router::bdr::BdrConfig;
use dra_router::components::ComponentKind;

/// One end-to-end flow: Poisson packet arrivals from `src`'s host
/// port to `dst`'s host port.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Source node.
    pub src: u32,
    /// Destination node (≠ `src`).
    pub dst: u32,
    /// Mean packet rate, packets per second.
    pub rate_pps: f64,
}

/// Network-level model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Link parameters (uniform).
    pub link: LinkConfig,
    /// Healthy per-router transit delay (lookup + fabric), seconds.
    pub node_transit_s: f64,
    /// EIB promised bandwidth available to covered transit at one
    /// node, bits per second.
    pub coverage_bps: f64,
    /// Backlog bound of the per-node coverage budget, seconds.
    pub coverage_backlog_s: f64,
    /// Hop budget per packet (defensive; routes are loop-free).
    pub ttl: u8,
    /// End-to-end packet size, bytes.
    pub packet_bytes: u32,
    /// Flow injection stops at this time (the remainder of the
    /// horizon drains the network).
    pub traffic_stop_s: f64,
    /// Threads for [`NetworkSim::run`]: 1 (the default) runs the
    /// serial kernel — the oracle — while N > 1 runs the conservative
    /// parallel engine ([`crate::pdes`]) with per-router logical
    /// processes. The artifact contract: every value produces the same
    /// bytes.
    pub sim_threads: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            link: LinkConfig::default(),
            node_transit_s: 2e-6,
            coverage_bps: 20e9,
            coverage_backlog_s: 200e-6,
            ttl: 32,
            packet_bytes: 700,
            traffic_stop_s: f64::MAX,
            sim_threads: 1,
        }
    }
}

/// A network-level fault action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetAction {
    /// Fail one unit of one linecard of one router.
    FailComponent {
        /// Target router.
        node: u32,
        /// Target linecard (port).
        lc: u16,
        /// Unit to fail.
        kind: ComponentKind,
    },
    /// Hot-swap repair a linecard.
    RepairLc {
        /// Target router.
        node: u32,
        /// Target linecard.
        lc: u16,
    },
    /// Fail a router's EIB (DRA only; no-op on BDR).
    FailEib {
        /// Target router.
        node: u32,
    },
    /// Repair a router's EIB.
    RepairEib {
        /// Target router.
        node: u32,
    },
    /// Cut the cable between `a` and `b` (both directions).
    FailLink {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
    },
    /// Restore the cable between `a` and `b`.
    RepairLink {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
    },
}

/// A time-ordered network fault timeline.
#[derive(Debug, Clone, Default)]
pub struct NetScenario {
    events: Vec<(f64, NetAction)>,
}

impl NetScenario {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `action` at `at_s` (builder style).
    pub fn at(mut self, at_s: f64, action: NetAction) -> Self {
        assert!(at_s.is_finite() && at_s >= 0.0);
        self.events.push((at_s, action));
        self
    }

    /// The scripted events, in insertion order.
    pub fn events(&self) -> &[(f64, NetAction)] {
        &self.events
    }

    fn ordered(&self) -> Vec<(f64, NetAction)> {
        let mut ev = self.events.clone();
        ev.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        ev
    }
}

/// An end-to-end packet in flight.
///
/// Sized to ride the hot path: 24 bytes, so every event that carries
/// one stays within half a cache line (the static asserts below pin
/// the event payload budget).
#[derive(Debug, Clone, Copy)]
pub struct NetPacket {
    /// Injection-order id (also salts the destination host address).
    pub id: u64,
    /// Injection timestamp.
    pub injected_at: f64,
    /// Owning flow index.
    pub flow: u32,
    /// Destination node (node ids fit `u16`; `node_prefix` asserts
    /// the same bound when deriving addresses).
    pub dst: u16,
    /// Remaining hop budget.
    pub ttl: u8,
    /// Router hops taken so far.
    pub hops: u8,
}

// The per-event payload budget the hot-path overhaul pays for: a
// packet is 24 bytes and no event in the serial alphabet exceeds 40.
const _: () = assert!(std::mem::size_of::<NetPacket>() == 24);
const _: () = assert!(std::mem::size_of::<NetEvent>() <= 40);

/// Event alphabet of the network model.
#[derive(Debug, Clone)]
pub enum NetEvent {
    /// Kick off flows and the fault timeline.
    Start,
    /// Next arrival of one flow.
    FlowNext {
        /// Flow index.
        flow: u32,
    },
    /// A packet begins transit at `node`, having arrived on `in_port`.
    Transit {
        /// The packet.
        pkt: NetPacket,
        /// Transit router.
        node: u32,
        /// Arrival port (= ingress linecard).
        in_port: u16,
    },
    /// A packet cleared `node`'s transit and enters the link at
    /// `out_port`.
    Forward {
        /// The packet.
        pkt: NetPacket,
        /// Forwarding router.
        node: u32,
        /// Egress port.
        out_port: u16,
    },
    /// A packet reaches its destination's host port.
    Deliver {
        /// The packet.
        pkt: NetPacket,
    },
    /// Apply scripted network action `idx`.
    Act {
        /// Index into the ordered scenario.
        idx: u32,
    },
}

/// One scripted action with every topology lookup already resolved —
/// what [`NetworkSim::set_scenario`] compiles a [`NetAction`] into, so
/// applying a link action on the hot timeline costs two indexed
/// stores instead of two `port_between` binary searches.
#[derive(Debug, Clone)]
pub(crate) enum CompiledNetAction {
    /// Forwarded to one router's private timeline.
    Router {
        /// Target router.
        node: u32,
        /// The single-router action to apply.
        action: Action,
    },
    /// Both directions of one cable, as resolved `(node, port)` pairs.
    Cable {
        /// One endpoint.
        a: u32,
        /// `a`'s port toward `b`.
        pa: u16,
        /// The other endpoint.
        b: u32,
        /// `b`'s port toward `a`.
        pb: u16,
        /// New up/down state for both directions.
        up: bool,
    },
}

/// Resolve one [`NetAction`] against the topology (see
/// [`CompiledNetAction`]).
fn compile_net_action(topo: &Topology, action: NetAction) -> CompiledNetAction {
    let port_between = |a: u32, b: u32| -> u16 {
        topo.adj[a as usize]
            .binary_search(&b)
            .unwrap_or_else(|_| panic!("no link {a}-{b}")) as u16
    };
    match action {
        NetAction::FailComponent { node, lc, kind } => CompiledNetAction::Router {
            node,
            action: Action::FailComponent(lc, kind),
        },
        NetAction::RepairLc { node, lc } => CompiledNetAction::Router {
            node,
            action: Action::RepairLc(lc),
        },
        NetAction::FailEib { node } => CompiledNetAction::Router {
            node,
            action: Action::FailEib,
        },
        NetAction::RepairEib { node } => CompiledNetAction::Router {
            node,
            action: Action::RepairEib,
        },
        NetAction::FailLink { a, b } => CompiledNetAction::Cable {
            a,
            pa: port_between(a, b),
            b,
            pb: port_between(b, a),
            up: false,
        },
        NetAction::RepairLink { a, b } => CompiledNetAction::Cable {
            a,
            pa: port_between(a, b),
            b,
            pb: port_between(b, a),
            up: true,
        },
    }
}

/// The co-simulated network.
///
/// Interior fields are `pub(crate)` so [`crate::pdes`] can decompose a
/// built network into per-router logical processes and reassemble it.
pub struct NetworkSim {
    /// The graph.
    pub topo: Topology,
    /// Per-node topology-derived FIBs.
    pub(crate) fibs: Vec<Dir248Fib>,
    /// Per-node router handles.
    pub(crate) nodes: Vec<RouterHandle>,
    /// Every directed link, flat, indexed by `(node, port)`.
    pub(crate) links: LinkArena,
    /// Per-node EIB coverage budget (fluid queue drain time).
    pub(crate) covered_busy: Vec<f64>,
    /// Flows.
    pub(crate) flows: Vec<Flow>,
    /// Ordered network fault timeline.
    pub(crate) scenario: Vec<(f64, NetAction)>,
    /// `scenario` with topology lookups resolved (same indexing).
    pub(crate) compiled: Vec<CompiledNetAction>,
    /// Model parameters.
    pub cfg: NetConfig,
    /// Composed metrics.
    pub stats: NetStats,
    pub(crate) next_pkt_id: u64,
    /// Network-scope telemetry collector (installed by
    /// [`NetworkSim::enable_net_telemetry`]; `None` = off). Boxed so
    /// the disabled hot path pays one pointer, not the collector.
    #[cfg(feature = "telemetry")]
    pub(crate) tele: Option<Box<crate::telemetry::NetTele>>,
}

impl NetworkSim {
    /// Build a network of `arch` routers on `topo`.
    ///
    /// Each node's router gets `degree + 1` linecards (one per link
    /// plus the host port, minimum 3), no internal traffic, and a
    /// private seed from [`node_seed`](crate::seeds::node_seed)
    /// `(router_seed_base, node)`.
    pub fn new(
        topo: Topology,
        arch: ArchKind,
        cfg: NetConfig,
        flows: Vec<Flow>,
        router_seed_base: u64,
    ) -> NetworkSim {
        for f in &flows {
            assert!(f.src != f.dst, "flow src == dst");
            assert!((f.src as usize) < topo.n_nodes() && (f.dst as usize) < topo.n_nodes());
            assert!(f.rate_pps > 0.0);
        }
        let routes = RouteTables::derive(&topo);
        let fibs = compile_fibs(&topo, &routes);
        let nodes = (0..topo.n_nodes() as u32)
            .map(|n| {
                let base = BdrConfig {
                    n_lcs: topo.n_lcs(n),
                    ..BdrConfig::default()
                };
                RouterHandle::quiescent(
                    arch,
                    base,
                    crate::seeds::node_seed(router_seed_base, n as u64),
                )
            })
            .collect();
        let links = LinkArena::from_degrees(topo.adj.iter().map(Vec::len), cfg.link.latency_s);
        let n_flows = flows.len();
        let covered_busy = vec![0.0; topo.n_nodes()];
        NetworkSim {
            topo,
            fibs,
            nodes,
            links,
            covered_busy,
            flows,
            scenario: Vec::new(),
            compiled: Vec::new(),
            cfg,
            stats: NetStats::new(n_flows),
            next_pkt_id: 0,
            #[cfg(feature = "telemetry")]
            tele: None,
        }
    }

    /// Attach the network fault timeline (replaces any previous one),
    /// compiling every action's topology lookups — link endpoints to
    /// `(node, port)` pairs — once, here, instead of per application.
    pub fn set_scenario(&mut self, scenario: &NetScenario) {
        self.scenario = scenario.ordered();
        self.compiled = self
            .scenario
            .iter()
            .map(|&(_, a)| compile_net_action(&self.topo, a))
            .collect();
    }

    /// Override the propagation latency of the cable between `a` and
    /// `b` (both directions). The parallel engine's window width
    /// adapts to the minimum attached latency, so slowing some links
    /// down never affects conservative safety; speeding links up
    /// tightens the windows automatically.
    pub fn set_link_latency(&mut self, a: u32, b: u32, latency_s: f64) {
        assert!(
            latency_s.is_finite() && latency_s > 0.0,
            "link latency must be positive and finite, got {latency_s}"
        );
        let pab = self.port_between(a, b);
        let pba = self.port_between(b, a);
        self.links.at_mut(a, pab).latency_s = latency_s;
        self.links.at_mut(b, pba).latency_s = latency_s;
    }

    /// Attach a per-router fault timeline (e.g. sampled from a
    /// [`FaultProcess`](dra_core::scenario::FaultProcess) on the
    /// node's private seed stream) to `node`.
    pub fn set_node_fault_schedule(&mut self, node: u32, timeline: &Scenario) {
        self.nodes[node as usize].set_fault_schedule(timeline);
    }

    /// Immutable access to a node's router handle.
    pub fn node(&self, node: u32) -> &RouterHandle {
        &self.nodes[node as usize]
    }

    /// The flows driving this network.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Wrap in a seeded simulation with `Start` queued at t = 0.
    pub fn simulation(self, seed: u64) -> Simulation<NetworkSim> {
        let mut sim = Simulation::new(self, seed);
        sim.schedule(0.0, NetEvent::Start);
        sim
    }

    /// Run the network to `horizon`, honoring
    /// [`NetConfig::sim_threads`]: 1 drives the serial DES kernel,
    /// N > 1 the conservative parallel engine. Both produce the same
    /// final state bytes (the CI `topo-smoke` job pins 1 vs 2 vs 4).
    pub fn run(self, seed: u64, horizon: f64) -> NetworkSim {
        if self.cfg.sim_threads > 1 {
            crate::pdes::run_parallel(self, seed, horizon)
        } else {
            let mut sim = self.simulation(seed);
            sim.run_until(horizon);
            sim.into_model()
        }
    }

    /// Serial-path conservation-ledger guard: a packet terminating
    /// while the ledger believes nothing is in flight is the
    /// double-count/leak the ledger exists to catch — freeze the
    /// flight-recorder window right there (first violation wins; the
    /// frozen window surfaces in the exported snapshot).
    #[cfg(feature = "telemetry")]
    #[inline]
    fn conservation_guard(&self) {
        if self.stats.in_flight == 0 {
            dra_telemetry::anomaly("net: conservation ledger violation (terminate without inject)");
        }
    }

    fn port_between(&self, a: u32, b: u32) -> u16 {
        self.topo.adj[a as usize]
            .binary_search(&b)
            .unwrap_or_else(|_| panic!("no link {a}-{b}")) as u16
    }

    /// Apply scripted action `idx` (precompiled — no topology searches
    /// on the event path; cable endpoints apply `a` then `b`, the same
    /// order the uncompiled path always used).
    fn apply_net_action(&mut self, idx: usize, now: f64) {
        match self.compiled[idx].clone() {
            CompiledNetAction::Router { node, action } => {
                let h = &mut self.nodes[node as usize];
                h.advance_to(now);
                h.apply(&action);
            }
            CompiledNetAction::Cable { a, pa, b, pb, up } => {
                self.links.at_mut(a, pa).set_up(up);
                self.links.at_mut(b, pb).set_up(up);
            }
        }
    }

    /// One router transit: health checks, FIB lookup, coverage
    /// charge; schedules `Deliver` or `Forward`, or drops.
    fn transit(
        &mut self,
        mut pkt: NetPacket,
        node: u32,
        in_port: u16,
        ctx: &mut Ctx<'_, NetEvent>,
    ) {
        #[cfg(feature = "telemetry")]
        dra_telemetry::event(
            dra_telemetry::EventKind::NetTransit,
            pkt.id,
            node,
            in_port as u32,
        );
        let outcome = hop(
            node,
            &mut self.nodes[node as usize],
            &self.fibs[node as usize],
            &mut self.covered_busy[node as usize],
            &self.cfg,
            ctx.now(),
            &mut pkt,
            in_port,
        );
        #[cfg(feature = "telemetry")]
        {
            let node_transit_s = self.cfg.node_transit_s;
            if let Some(t) = self.tele.as_deref_mut() {
                t.transit_outcome(ctx.now(), node, &pkt, &outcome, node_transit_s);
            }
            if let HopOutcome::Drop(cause) = outcome {
                dra_telemetry::event(
                    dra_telemetry::EventKind::NetDrop,
                    pkt.id,
                    node,
                    cause.index() as u32,
                );
            }
        }
        match outcome {
            HopOutcome::Drop(cause) => {
                #[cfg(feature = "telemetry")]
                self.conservation_guard();
                self.stats.drop_packet(cause)
            }
            HopOutcome::Deliver { delay_s } => ctx.schedule(delay_s, NetEvent::Deliver { pkt }),
            HopOutcome::Forward { delay_s, out_port } => ctx.schedule(
                delay_s,
                NetEvent::Forward {
                    pkt,
                    node,
                    out_port,
                },
            ),
        }
    }
}

/// Outcome of one router transit, computed by [`hop`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum HopOutcome {
    /// The packet dies at this hop.
    Drop(NetDropCause),
    /// This node is the destination; the host port sees it `delay_s`
    /// from now.
    Deliver {
        /// Transit (+ coverage) delay.
        delay_s: f64,
    },
    /// Forward out of `out_port` after `delay_s`.
    Forward {
        /// Transit (+ coverage) delay.
        delay_s: f64,
        /// Egress port toward the next hop.
        out_port: u16,
    },
}

/// The per-hop core shared verbatim by the serial model and the
/// parallel per-router logical processes: advance the router to `now`,
/// run health checks and the FIB lookup, charge the EIB coverage
/// budget, and decide the packet's fate. Mutates `pkt` (hop count,
/// TTL) and the router/coverage state exactly as the serial path
/// always has — the operation *order* here is load-bearing for
/// byte-identical artifacts (e.g. the coverage budget is consumed
/// before the TTL check).
#[allow(clippy::too_many_arguments)]
pub(crate) fn hop(
    node: u32,
    router: &mut RouterHandle,
    fib: &Dir248Fib,
    covered_busy: &mut f64,
    cfg: &NetConfig,
    now: f64,
    pkt: &mut NetPacket,
    in_port: u16,
) -> HopOutcome {
    pkt.hops = pkt.hops.saturating_add(1);
    router.advance_to(now);
    if !router.lc_serviceable(in_port) {
        return HopOutcome::Drop(NetDropCause::IngressDown);
    }
    let Some(out_port) = fib.lookup(node_addr(pkt.dst as u32, pkt.id)) else {
        return HopOutcome::Drop(NetDropCause::NoRoute);
    };
    if !router.lc_serviceable(out_port) {
        return HopOutcome::Drop(NetDropCause::EgressDown);
    }
    if !router.fabric_operational() {
        return HopOutcome::Drop(NetDropCause::FabricDown);
    }
    let mut delay = cfg.node_transit_s;
    if router.lc_covered(in_port) || router.lc_covered(out_port) {
        // Covered transit detours over the EIB: serialize against
        // the node's promised-bandwidth budget.
        let start = covered_busy.max(now);
        let finish = start + cfg.packet_bytes as f64 * 8.0 / cfg.coverage_bps;
        if finish - now > cfg.coverage_backlog_s {
            return HopOutcome::Drop(NetDropCause::CoverageSaturated);
        }
        *covered_busy = finish;
        delay += finish - now;
    }
    if node == pkt.dst as u32 {
        HopOutcome::Deliver { delay_s: delay }
    } else {
        if pkt.ttl == 0 {
            return HopOutcome::Drop(NetDropCause::TtlExceeded);
        }
        pkt.ttl -= 1;
        HopOutcome::Forward {
            delay_s: delay,
            out_port,
        }
    }
}

impl Model for NetworkSim {
    type Event = NetEvent;

    fn handle(&mut self, event: NetEvent, ctx: &mut Ctx<'_, NetEvent>) {
        match event {
            NetEvent::Start => {
                for (idx, &(at, _)) in self.scenario.iter().enumerate() {
                    ctx.schedule(at, NetEvent::Act { idx: idx as u32 });
                }
                for flow in 0..self.flows.len() as u32 {
                    let dt = exponential(ctx.rng(), self.flows[flow as usize].rate_pps);
                    ctx.schedule(dt, NetEvent::FlowNext { flow });
                }
            }
            NetEvent::FlowNext { flow } => {
                if ctx.now() >= self.cfg.traffic_stop_s {
                    return; // injection window closed; don't reschedule
                }
                let f = self.flows[flow as usize];
                let dt = exponential(ctx.rng(), f.rate_pps);
                ctx.schedule(dt, NetEvent::FlowNext { flow });
                let pkt = NetPacket {
                    id: self.next_pkt_id,
                    injected_at: ctx.now(),
                    flow,
                    dst: f.dst as u16,
                    ttl: self.cfg.ttl,
                    hops: 0,
                };
                self.next_pkt_id += 1;
                self.stats.inject(flow);
                let host = self.topo.host_port(f.src);
                self.transit(pkt, f.src, host, ctx);
            }
            NetEvent::Transit { pkt, node, in_port } => self.transit(pkt, node, in_port, ctx),
            NetEvent::Forward {
                pkt,
                node,
                out_port,
            } => {
                let offer = self.links.at_mut(node, out_port).offer(
                    &self.cfg.link,
                    ctx.now(),
                    self.cfg.packet_bytes,
                );
                #[cfg(feature = "telemetry")]
                {
                    if let Some(t) = self.tele.as_deref_mut() {
                        t.forward_outcome(ctx.now(), node, out_port, &pkt, &offer);
                    }
                    let (kind, b) = match offer {
                        LinkOffer::Sent { .. } => {
                            (dra_telemetry::EventKind::NetForward, out_port as u32)
                        }
                        LinkOffer::Down => (
                            dra_telemetry::EventKind::NetDrop,
                            NetDropCause::LinkDown.index() as u32,
                        ),
                        LinkOffer::Congested => (
                            dra_telemetry::EventKind::NetDrop,
                            NetDropCause::LinkCongested.index() as u32,
                        ),
                    };
                    dra_telemetry::event(kind, pkt.id, node, b);
                }
                match offer {
                    LinkOffer::Down => {
                        #[cfg(feature = "telemetry")]
                        self.conservation_guard();
                        self.stats.drop_packet(NetDropCause::LinkDown)
                    }
                    LinkOffer::Congested => {
                        #[cfg(feature = "telemetry")]
                        self.conservation_guard();
                        self.stats.drop_packet(NetDropCause::LinkCongested)
                    }
                    LinkOffer::Sent { delay_s } => {
                        let peer = self.topo.adj[node as usize][out_port as usize];
                        let in_port = self.topo.rev_port[node as usize][out_port as usize];
                        ctx.schedule(
                            delay_s,
                            NetEvent::Transit {
                                pkt,
                                node: peer,
                                in_port,
                            },
                        );
                    }
                }
            }
            NetEvent::Deliver { pkt } => {
                #[cfg(feature = "telemetry")]
                {
                    dra_telemetry::event(
                        dra_telemetry::EventKind::NetDeliver,
                        pkt.id,
                        pkt.dst as u32,
                        pkt.hops as u32,
                    );
                    if let Some(t) = self.tele.as_deref_mut() {
                        t.delivered(ctx.now(), pkt.dst as u32, &pkt);
                    }
                    self.conservation_guard();
                }
                self.stats
                    .deliver(pkt.flow, ctx.now() - pkt.injected_at, pkt.hops as u32);
            }
            NetEvent::Act { idx } => {
                #[cfg(feature = "telemetry")]
                {
                    let node = match &self.compiled[idx as usize] {
                        CompiledNetAction::Router { node, .. } => *node,
                        CompiledNetAction::Cable { a, .. } => *a,
                    };
                    dra_telemetry::event(dra_telemetry::EventKind::NetAct, 0, node, idx);
                }
                self.apply_net_action(idx as usize, ctx.now())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyKind;

    fn small_net(arch: ArchKind) -> NetworkSim {
        let topo = Topology::build(TopologyKind::Mesh2D { rows: 3, cols: 3 });
        let cfg = NetConfig {
            traffic_stop_s: 5e-3,
            ..NetConfig::default()
        };
        let flows = vec![
            Flow {
                src: 0,
                dst: 8,
                rate_pps: 20_000.0,
            },
            Flow {
                src: 6,
                dst: 2,
                rate_pps: 20_000.0,
            },
        ];
        NetworkSim::new(topo, arch, cfg, flows, 0xBEEF)
    }

    #[test]
    fn healthy_network_delivers_everything() {
        for arch in [ArchKind::Bdr, ArchKind::Dra] {
            let mut sim = small_net(arch).simulation(42);
            sim.run_until(10e-3);
            let s = &sim.model().stats;
            assert!(s.injected > 50, "{arch:?}: {}", s.injected);
            assert_eq!(s.delivered, s.injected, "{arch:?}");
            assert_eq!(s.in_flight, 0, "{arch:?}");
            assert!(s.conserved());
            // Corner-to-corner on a 3x3 mesh: 4 links + 5 routers.
            assert!((s.hops.mean() - 5.0).abs() < 1e-9, "{}", s.hops.mean());
            assert!(s.latency.mean() > 4.0 * 10e-6, "4 propagation delays");
        }
    }

    #[test]
    fn identical_seeds_identical_histories() {
        let run = || {
            let mut sim = small_net(ArchKind::Dra).simulation(7);
            sim.run_until(10e-3);
            let s = &sim.model().stats;
            (s.injected, s.delivered, s.latency.mean())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn transit_router_failure_separates_architectures() {
        // Both flows transit node 1 (0→1→2→5→8 and 6→3→0→1→2 under
        // the lowest-id tie-break). Fail SRU on its even linecards at
        // t=1ms — port 0 faces node 0, so BDR drops transit arriving
        // from 0 while DRA covers the card over the EIB.
        let mut results = Vec::new();
        for arch in [ArchKind::Bdr, ArchKind::Dra] {
            let mut net = small_net(arch);
            let n_lcs = net.node(1).n_lcs() as u16;
            let mut sc = NetScenario::new();
            for lc in (0..n_lcs).step_by(2) {
                sc = sc.at(
                    1e-3,
                    NetAction::FailComponent {
                        node: 1,
                        lc,
                        kind: ComponentKind::Sru,
                    },
                );
            }
            net.set_scenario(&sc);
            let mut sim = net.simulation(7);
            sim.run_until(10e-3);
            let s = &sim.model().stats;
            assert!(s.conserved());
            results.push(s.delivery_ratio());
        }
        let (bdr, dra) = (results[0], results[1]);
        assert!(bdr < 1.0, "BDR must lose transit packets, got {bdr}");
        assert_eq!(dra, 1.0, "DRA must cover the SRU failures");
    }

    #[test]
    fn link_cut_drops_traffic_on_that_edge() {
        let mut net = small_net(ArchKind::Bdr);
        // Flow 0 routes 0→8 via lowest-id tie-breaks; cutting 0-1 and
        // 0-3 isolates node 0 entirely.
        let sc = NetScenario::new()
            .at(1e-3, NetAction::FailLink { a: 0, b: 1 })
            .at(1e-3, NetAction::FailLink { a: 0, b: 3 });
        net.set_scenario(&sc);
        let mut sim = net.simulation(7);
        sim.run_until(10e-3);
        let s = &sim.model().stats;
        assert!(s.conserved());
        assert!(s.drops[NetDropCause::LinkDown.index()] > 0);
        assert!(
            s.flow_availability(0.99) <= 0.5,
            "flow 0 must be unavailable"
        );
    }

    #[test]
    fn scenario_precompile_resolves_ports_and_cut_then_repair_is_stable() {
        // The cut-then-repair timeline that used to run through
        // per-action `port_between` searches: the compiled actions
        // must resolve to the same (node, port) pairs the topology
        // defines, and the run must produce identical stats every
        // time (and drops only while the cable is down).
        let sc = NetScenario::new()
            .at(2e-3, NetAction::FailLink { a: 1, b: 2 })
            .at(4e-3, NetAction::RepairLink { a: 1, b: 2 });
        let run = || {
            let mut net = small_net(ArchKind::Bdr);
            net.set_scenario(&sc);
            for (c, want_up) in net.compiled.iter().zip([false, true]) {
                match *c {
                    CompiledNetAction::Cable { a, pa, b, pb, up } => {
                        assert_eq!((a, b, up), (1, 2, want_up));
                        assert_eq!(net.topo.adj[a as usize][pa as usize], b);
                        assert_eq!(net.topo.adj[b as usize][pb as usize], a);
                        assert_eq!(net.topo.rev_port[a as usize][pa as usize], pb);
                    }
                    ref other => panic!("expected a compiled cable action, got {other:?}"),
                }
            }
            let mut sim = net.simulation(7);
            sim.run_until(10e-3);
            let s = &sim.model().stats;
            assert!(s.conserved());
            (
                s.injected,
                s.delivered,
                s.drops,
                s.latency.mean(),
                s.hops.mean(),
            )
        };
        let first = run();
        assert_eq!(first, run(), "cut-then-repair must be reproducible");
        // Flow 1 (6→2) transits 1→2 under lowest-id routing: the cut
        // window drops on LinkDown, and repair restores delivery (more
        // delivered than a run where the cut never heals).
        assert!(first.2[NetDropCause::LinkDown.index()] > 0, "{first:?}");
        let mut unhealed = small_net(ArchKind::Bdr);
        unhealed.set_scenario(&NetScenario::new().at(2e-3, NetAction::FailLink { a: 1, b: 2 }));
        let mut sim = unhealed.simulation(7);
        sim.run_until(10e-3);
        assert!(
            first.1 > sim.model().stats.delivered,
            "repair must restore deliveries"
        );
    }

    #[test]
    fn per_node_fault_schedules_inject() {
        use dra_core::scenario::Scenario;
        let mut net = small_net(ArchKind::Bdr);
        let timeline = Scenario::new(10e-3).at(
            0.5e-3,
            Action::FailComponent(net.topo.host_port(8), ComponentKind::Lfe),
        );
        net.set_node_fault_schedule(8, &timeline);
        let mut sim = net.simulation(7);
        sim.run_until(10e-3);
        let s = &sim.model().stats;
        assert!(s.conserved());
        // Flow 0's egress host port at node 8 is dead: egress drops.
        assert!(s.drops[NetDropCause::EgressDown.index()] > 0);
    }
}
