//! Parallel execution of one [`NetworkSim`]: per-router logical
//! processes on the conservative windowed engine of
//! [`dra_des::pdes`].
//!
//! ## Decomposition
//!
//! Everything a packet touches at one hop is owned by one router:
//! its [`RouterHandle`], FIB, EIB coverage budget, and the *outgoing*
//! directions of its links. The only interaction between routers is a
//! `Forward` → link → `Transit`-at-peer handoff, and the link model
//! charges at least that link's propagation latency on every such
//! handoff. The conservative lookahead is therefore the **minimum
//! latency over every attached link** ([`LinkArena::min_latency`]) —
//! known before the run, and adaptive: heterogeneous topologies get
//! the widest window their slowest-common-denominator link permits,
//! while messages over longer-latency links are simply delivered
//! early (always safe — see the safety note in `dra_des::pdes`). Each
//! router becomes one [`LogicalProcess`] with its own calendar queue,
//! and cross-router packets travel as [`NetCross`] messages merged at
//! barrier windows.
//!
//! ## Replaying the serial arrival stream
//!
//! The serial model's only shared-RNG draws are flow inter-arrival
//! times, and a `FlowNext` event's time depends only on previous
//! draws — never on packet forwarding. [`precompute_arrivals_into`]
//! replays the serial kernel's exact draw order (a (time, sequence)
//! total order over `FlowNext` events alone) on the same seeded RNG,
//! turning the whole arrival timeline into data before any LP starts
//! (into buffers pooled across replications). Each injection becomes
//! a pre-inserted `Transit` at the source LP with the bit-exact
//! serial timestamp and packet id.
//!
//! ## Tie order: the provenance chain
//!
//! The serial kernel breaks exact `f64` time ties by scheduling
//! sequence, and such ties are *structural*, not measure-zero: the EIB
//! coverage budget is a fluid queue (`finish = covered_busy.max(now) +
//! c`), so under backlog the completion times it hands out chain off
//! `covered_busy` in fixed increments rather than off the packets' own
//! arrival times, and the link model serializes `busy_until` the same
//! way. Two packets can therefore collide on a timestamp bit-for-bit —
//! and because both the coverage budget and the links are *stateful*,
//! the order tied events are processed in changes which packet gets
//! which delay, not merely the order of identical outcomes.
//!
//! Serial scheduling sequence is recovered exactly from event
//! *provenance*: an event's sequence number orders it after its
//! scheduler, so two tied events compare as their schedulers' pop
//! times, recursively — i.e. as their ancestor chains of pop times,
//! most recent first. Each packet carries that chain as one `u32`
//! handle into a per-LP [`ChainArena`] of `(pop_time, parent)` nodes
//! (extended by one node per event popped on its behalf — no heap
//! allocation per hop); each LP pops same-time batches and sorts them
//! by the arena's parent-pointer walk — the identical
//! most-recent-first order the retained `Vec<f64>` representation
//! compared — before touching any state. Chains bottom out at
//! injections (`FlowNext` provenance) and scripted actions (`Start`
//! provenance), whose times are fresh RNG draws or scenario constants
//! with no shared lineage — only there does the tie-break fall back to
//! insertion order, and only there is the contract's measure-zero fine
//! print (documented in DESIGN.md).
//!
//! Cross-LP handoffs serialize the chain (most recent first) into the
//! window's payload sidecar ([`Outbox::payload`]) and the receiving LP
//! re-interns it into its own arena — a by-value copy, which is
//! semantically free because chains are compared by value. Arena
//! memory stays bounded by epoch-based compaction at window barriers:
//! when an LP's arena crosses its threshold, the paths reachable from
//! still-pending events are copied into a fresh epoch and their
//! handles rewritten in place ([`CalendarQueue::for_each_item_mut`]);
//! everything else is garbage. Delivered packets' chains are
//! materialized by value into a per-LP store at delivery time, so
//! they survive every epoch until the final merge.
//!
//! ## Merge rules
//!
//! Integer counters (injections, deliveries, per-cause drops, per-flow
//! tallies) commute exactly. The latency/hops Welford moments are
//! order-sensitive, so each LP records its deliveries and the merge
//! replays them into one Welford stream sorted by delivery time, with
//! the provenance chain breaking exact ties (stable, per-node order on
//! full-chain ties). `in_flight` is recomputed from the ledger. The CI
//! `topo-smoke` job pins `--sim-threads` 1 vs 2 vs 4 byte-identity.

use crate::chain::{chain_cmp_recent_first, ChainArena, NIL};
use crate::link::{LinkArena, LinkOffer, LinkState};
use crate::net::{hop, CompiledNetAction, Flow, HopOutcome, NetConfig, NetPacket, NetworkSim};
use crate::stats::{NetDropCause, NetStats};
use dra_core::handle::RouterHandle;
use dra_core::scenario::Action;
use dra_des::calendar::CalendarQueue;
use dra_des::pdes::{run_windows, LogicalProcess, Outbox, WindowReport};
use dra_des::random::exponential;
use dra_net::fib::Dir248Fib;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cell::RefCell;

/// One precomputed packet injection.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    at: f64,
    flow: u32,
    id: u64,
}

/// Per-flow precompute scratch: (next fire time, insertion order, alive).
type FlowPending = Vec<(f64, u64, bool)>;

thread_local! {
    /// Arrival-precompute workspace, pooled per worker thread so
    /// campaign replications reuse the buffers instead of
    /// reallocating the whole arrival timeline per cell × rep.
    static PRECOMPUTE_POOL: RefCell<(Vec<Arrival>, FlowPending)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Replay the serial kernel's flow-arrival draw order into `out`.
///
/// In the serial model `Start` draws one inter-arrival per flow (in
/// flow order), then each `FlowNext` pop draws the next one — unless
/// it fires at or past `stop_s` (no draw, flow ends) or lands beyond
/// `horizon` (never pops). `FlowNext` pops follow the kernel's
/// (time, sequence) order, which restricted to arrivals is exactly
/// "earliest pending time, insertion order on ties" — reproduced here
/// with a scan (flow counts are small). Same RNG, same draw sequence,
/// bit-identical timestamps and packet ids. `pending` is caller-owned
/// scratch ((next fire time, insertion order, alive) per flow).
fn precompute_arrivals_into(
    flows: &[Flow],
    stop_s: f64,
    horizon: f64,
    seed: u64,
    out: &mut Vec<Arrival>,
    pending: &mut Vec<(f64, u64, bool)>,
) {
    out.clear();
    pending.clear();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut order = 0u64;
    for f in flows {
        let dt = exponential(&mut rng, f.rate_pps);
        pending.push((dt, order, true));
        order += 1;
    }
    let mut id = 0u64;
    loop {
        let mut best: Option<usize> = None;
        for (i, &(t, o, alive)) in pending.iter().enumerate() {
            if alive && best.is_none_or(|b| (t, o) < (pending[b].0, pending[b].1)) {
                best = Some(i);
            }
        }
        let Some(i) = best else { break };
        let t = pending[i].0;
        if t > horizon {
            break; // the minimum is already past the horizon
        }
        if t >= stop_s {
            pending[i].2 = false; // injection window closed, no draw
            continue;
        }
        let dt = exponential(&mut rng, flows[i].rate_pps);
        pending[i] = (t + dt, order, true);
        order += 1;
        out.push(Arrival {
            at: t,
            flow: i as u32,
            id,
        });
        id += 1;
    }
}

/// One delivered packet, recorded for the ordered Welford replay. The
/// provenance chain (pop times of every event processed on its
/// behalf, most recent first) lives in the owning LP's chain store at
/// `chain_off..chain_off + chain_len` — materialized by value at
/// delivery time so it survives arena compaction epochs.
#[derive(Debug, Clone, Copy)]
struct Delivery {
    at: f64,
    latency_s: f64,
    chain_off: u32,
    chain_len: u32,
    flow: u32,
    hops: u8,
}

/// A fault action localized to one router LP. A cable cut, atomic in
/// the serial model, splits into one `Link` action per direction —
/// each direction's state is only ever read by its owning LP, so the
/// split is unobservable.
#[derive(Debug, Clone)]
enum LocalAct {
    Router(Action),
    Link { port: u16, up: bool },
}

/// Local event alphabet of one router LP (the node-local restriction
/// of [`crate::net::NetEvent`]; arrivals are pre-inserted `Transit`s).
/// `chain` is a handle into the owning LP's [`ChainArena`].
#[derive(Debug, Clone)]
enum LpEvent {
    Transit {
        pkt: NetPacket,
        in_port: u16,
        chain: u32,
    },
    Forward {
        pkt: NetPacket,
        out_port: u16,
        chain: u32,
    },
    Deliver {
        pkt: NetPacket,
        chain: u32,
    },
    Act(LocalAct),
}

// The hot-path variants stay within 32 bytes (24-byte packet + port +
// chain handle + discriminant); only scripted actions may exceed it.
const _: () = assert!(std::mem::size_of::<LpEvent>() <= 32);

impl LpEvent {
    /// The event's provenance chain (scripted actions descend from
    /// `Start`, injected transits from `FlowNext`: both empty).
    fn chain(&self) -> u32 {
        match self {
            LpEvent::Transit { chain, .. }
            | LpEvent::Forward { chain, .. }
            | LpEvent::Deliver { chain, .. } => *chain,
            LpEvent::Act(_) => NIL,
        }
    }

    /// Mutable handle access for arena-compaction relocation.
    fn chain_mut(&mut self) -> Option<&mut u32> {
        match self {
            LpEvent::Transit { chain, .. }
            | LpEvent::Forward { chain, .. }
            | LpEvent::Deliver { chain, .. } => Some(chain),
            LpEvent::Act(_) => None,
        }
    }
}

/// A packet crossing between router LPs, timestamped with its arrival
/// at the peer (≥ one link latency after the emitting `Forward`). The
/// provenance chain rides the window's payload sidecar at
/// `chain_off..chain_off + chain_len`, most recent pop first.
struct NetCross {
    time: f64,
    pkt: NetPacket,
    in_port: u16,
    chain_off: u32,
    chain_len: u32,
}

/// One router as a logical process: the node-local slice of
/// [`NetworkSim`] plus a private calendar queue and provenance arena.
struct NodeLp {
    node: u32,
    cfg: NetConfig,
    router: RouterHandle,
    fib: Dir248Fib,
    /// Outgoing directed links, by port.
    links: Vec<LinkState>,
    /// `peers[p]` = node at the far end of port `p`.
    peers: Vec<u32>,
    /// `peer_in_port[p]` = the peer's port facing back at us.
    peer_in_port: Vec<u16>,
    covered_busy: f64,
    queue: CalendarQueue<LpEvent>,
    seq: u64,
    /// Precomputed traffic arrivals `(time, seq, pkt, in_port)`,
    /// sorted by `(time, seq)` and fed into the queue one window at a
    /// time by `advance_window`. Staging keeps the calendar population
    /// bounded by the in-flight event count instead of the full
    /// horizon's arrival schedule — the queue never grows (or
    /// allocates) proportionally to how long the run is. The `(time,
    /// seq)` keys are assigned at setup exactly as eager insertion
    /// would have assigned them, and calendar pop order is a pure
    /// function of those keys, so late insertion is unobservable.
    staged: Vec<(f64, u64, NetPacket, u16)>,
    /// Cursor into `staged`: everything before it has been fed.
    next_staged: usize,
    /// Interned provenance chains for every pending local event.
    arena: ChainArena,
    /// Same-time batch staging, reused across pops and windows.
    batch: Vec<(u64, LpEvent)>,
    /// Delivered packets' chains, materialized most-recent-first.
    chain_store: Vec<f64>,
    drops: [u64; 8],
    deliveries: Vec<Delivery>,
    /// Per-LP telemetry collector (counters, sampled spans, sampled
    /// delivered chains), folded into the network-scope collector in
    /// LP-id order after the run. `None` whenever collection is off,
    /// so the hot path pays one branch per event and nothing else.
    #[cfg(feature = "telemetry")]
    tele: Option<Box<crate::telemetry::LpTele>>,
    /// Events processed, read by the engine profiler via
    /// [`LogicalProcess::events_processed`].
    #[cfg(feature = "telemetry")]
    events: u64,
}

impl NodeLp {
    fn push(&mut self, time: f64, event: LpEvent) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(time, seq, event);
    }

    /// Record an arrival for lazy injection, consuming a `seq` exactly
    /// as an eager `push` would have.
    fn stage(&mut self, time: f64, pkt: NetPacket, in_port: u16) {
        let seq = self.seq;
        self.seq += 1;
        self.staged.push((time, seq, pkt, in_port));
    }
}

impl LogicalProcess for NodeLp {
    type Cross = NetCross;
    type Payload = Vec<f64>;

    fn advance_window(&mut self, window_end: f64, out: &mut Outbox<NetCross, Vec<f64>>) {
        // The payload buffer is this LP's own, recycled from two
        // barriers ago; offsets restart at zero each window.
        out.payload.clear();
        // Feed this window's staged arrivals before draining anything:
        // their pre-assigned `(time, seq)` keys slot them into the pop
        // order exactly where eager insertion would have.
        while let Some(&(t, seq, pkt, in_port)) = self.staged.get(self.next_staged) {
            if t > window_end {
                break;
            }
            self.next_staged += 1;
            self.queue.push(
                t,
                seq,
                LpEvent::Transit {
                    pkt,
                    in_port,
                    chain: NIL,
                },
            );
        }
        let mut batch = std::mem::take(&mut self.batch);
        while let Some((now, seq, event)) = self.queue.pop_at_or_before(window_end) {
            // Drain every event tied at `now` and order the batch by
            // provenance (the serial scheduling sequence) before any
            // of them touches the router, budget, or link state.
            // Processing only ever schedules strictly later events
            // (every hop and link delay is positive), so the batch is
            // closed once drained.
            batch.clear();
            batch.push((seq, event));
            while let Some((t, s, e)) = self.queue.pop_at_or_before(now) {
                debug_assert_eq!(t, now, "queue returned an event before the popped minimum");
                batch.push((s, e));
            }
            if batch.len() > 1 {
                // Unstable sort: the trailing `seq` compare makes the
                // order total (seqs are unique), and the unstable
                // algorithm never allocates sort scratch on the hot
                // path.
                let arena = &self.arena;
                batch.sort_unstable_by(|a, b| {
                    arena.cmp(a.1.chain(), b.1.chain()).then(a.0.cmp(&b.0))
                });
            }
            for (_seq, event) in batch.drain(..) {
                #[cfg(feature = "telemetry")]
                {
                    self.events += 1;
                }
                match event {
                    LpEvent::Transit {
                        mut pkt,
                        in_port,
                        chain,
                    } => {
                        let outcome = hop(
                            self.node,
                            &mut self.router,
                            &self.fib,
                            &mut self.covered_busy,
                            &self.cfg,
                            now,
                            &mut pkt,
                            in_port,
                        );
                        #[cfg(feature = "telemetry")]
                        if let Some(t) = self.tele.as_deref_mut() {
                            let node_transit_s = self.cfg.node_transit_s;
                            t.col.transit_outcome(
                                &mut t.nc,
                                now,
                                self.node,
                                &pkt,
                                &outcome,
                                node_transit_s,
                            );
                        }
                        match outcome {
                            HopOutcome::Drop(cause) => self.drops[cause.index()] += 1,
                            HopOutcome::Deliver { delay_s } => {
                                let chain = self.arena.extend(chain, now);
                                self.push(now + delay_s, LpEvent::Deliver { pkt, chain });
                            }
                            HopOutcome::Forward { delay_s, out_port } => {
                                let chain = self.arena.extend(chain, now);
                                self.push(
                                    now + delay_s,
                                    LpEvent::Forward {
                                        pkt,
                                        out_port,
                                        chain,
                                    },
                                );
                            }
                        }
                    }
                    LpEvent::Forward {
                        pkt,
                        out_port,
                        chain,
                    } => {
                        let offer = self.links[out_port as usize].offer(
                            &self.cfg.link,
                            now,
                            self.cfg.packet_bytes,
                        );
                        #[cfg(feature = "telemetry")]
                        if let Some(t) = self.tele.as_deref_mut() {
                            t.col
                                .forward_outcome(&mut t.nc, now, self.node, out_port, &pkt, &offer);
                        }
                        match offer {
                            LinkOffer::Down => self.drops[NetDropCause::LinkDown.index()] += 1,
                            LinkOffer::Congested => {
                                self.drops[NetDropCause::LinkCongested.index()] += 1;
                            }
                            LinkOffer::Sent { delay_s } => {
                                // Serialize `now` + the chain (most
                                // recent first) into the sidecar; the
                                // peer re-interns it on accept.
                                let chain_off = out.payload.len() as u32;
                                out.payload.push(now);
                                self.arena.serialize_into(chain, &mut out.payload);
                                let chain_len = out.payload.len() as u32 - chain_off;
                                out.send(
                                    self.peers[out_port as usize],
                                    NetCross {
                                        time: now + delay_s,
                                        pkt,
                                        in_port: self.peer_in_port[out_port as usize],
                                        chain_off,
                                        chain_len,
                                    },
                                );
                            }
                        }
                    }
                    LpEvent::Deliver { pkt, chain } => {
                        let chain_off = self.chain_store.len() as u32;
                        self.arena.serialize_into(chain, &mut self.chain_store);
                        let chain_len = self.chain_store.len() as u32 - chain_off;
                        self.deliveries.push(Delivery {
                            at: now,
                            latency_s: now - pkt.injected_at,
                            chain_off,
                            chain_len,
                            flow: pkt.flow,
                            hops: pkt.hops,
                        });
                        #[cfg(feature = "telemetry")]
                        if let Some(t) = self.tele.as_deref_mut() {
                            t.col.delivered(&mut t.nc, now, self.node, &pkt);
                            if t.col.is_sampled(pkt.id) {
                                // Keep the materialized chain for the
                                // span-vs-provenance cross-check; the
                                // delivery's own copy is consumed by
                                // the stats replay.
                                let lo = chain_off as usize;
                                let hi = lo + chain_len as usize;
                                t.chains.push((pkt.id, self.chain_store[lo..hi].to_vec()));
                            }
                        }
                    }
                    LpEvent::Act(act) => match act {
                        LocalAct::Router(action) => {
                            self.router.advance_to(now);
                            self.router.apply(&action);
                        }
                        LocalAct::Link { port, up } => self.links[port as usize].set_up(up),
                    },
                }
            }
        }
        self.batch = batch;
        // Window barrier = epoch boundary: every live chain is
        // reachable from a pending queue event (cross messages were
        // interned on accept; delivered chains are already
        // materialized), so compaction relocates exactly those paths
        // and retires the rest.
        if self.arena.should_compact() {
            self.arena.begin_compact();
            let arena = &mut self.arena;
            self.queue.for_each_item_mut(|ev| {
                if let Some(h) = ev.chain_mut() {
                    *h = arena.relocate(*h);
                }
            });
            self.arena.finish_compact();
        }
    }

    fn accept(&mut self, msg: NetCross, payload: &Vec<f64>) {
        let lo = msg.chain_off as usize;
        let hi = lo + msg.chain_len as usize;
        let chain = self.arena.intern_recent_first(&payload[lo..hi]);
        self.push(
            msg.time,
            LpEvent::Transit {
                pkt: msg.pkt,
                in_port: msg.in_port,
                chain,
            },
        );
    }

    #[cfg(feature = "telemetry")]
    fn events_processed(&self) -> u64 {
        self.events
    }
}

/// Run `net` to `horizon` on `net.cfg.sim_threads` threads and return
/// the finished network (same shape [`NetworkSim::run`]'s serial
/// branch produces). Consumes a freshly built network: any statistics
/// already accumulated are discarded.
pub(crate) fn run_parallel(net: NetworkSim, seed: u64, horizon: f64) -> NetworkSim {
    assert!(
        horizon.is_finite() && horizon >= 0.0,
        "run_parallel: bad horizon {horizon}"
    );
    let threads = net.cfg.sim_threads.max(1);
    let NetworkSim {
        topo,
        fibs,
        nodes,
        links,
        covered_busy,
        flows,
        scenario,
        compiled,
        cfg,
        stats: _,
        next_pkt_id: _,
        #[cfg(feature = "telemetry")]
        tele,
    } = net;
    // Per-LP sampling density for the collectors installed below;
    // `None` keeps every hot-path hook a single never-taken branch.
    #[cfg(feature = "telemetry")]
    let mut tele = tele;
    #[cfg(feature = "telemetry")]
    let lp_sample: Option<u64> = tele.as_ref().map(|t| t.sample_every());
    // Adaptive conservative lookahead: the minimum latency over the
    // links actually attached (uniform configs reproduce the old
    // global `link.latency_s` window exactly; heterogeneous ones get
    // the tightest safe width).
    let lookahead = links.min_latency().unwrap_or(cfg.link.latency_s);
    let n_flows = flows.len();
    let (mut arrivals, mut pending) = PRECOMPUTE_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        (std::mem::take(&mut pool.0), std::mem::take(&mut pool.1))
    });
    precompute_arrivals_into(
        &flows,
        cfg.traffic_stop_s,
        horizon,
        seed,
        &mut arrivals,
        &mut pending,
    );

    // Exact-size the per-LP staging vectors up front: one allocation
    // each, no growth during the fill.
    let mut staged_counts = vec![0usize; topo.n_nodes()];
    for a in &arrivals {
        staged_counts[flows[a.flow as usize].src as usize] += 1;
    }
    let mut lps: Vec<NodeLp> = nodes
        .into_iter()
        .zip(fibs)
        .zip(links.into_per_node())
        .zip(covered_busy)
        .enumerate()
        .map(|(n, (((router, fib), links), covered_busy))| NodeLp {
            node: n as u32,
            cfg,
            router,
            fib,
            links,
            peers: topo.adj[n].clone(),
            peer_in_port: topo.rev_port[n].clone(),
            covered_busy,
            queue: CalendarQueue::new(),
            seq: 0,
            arena: ChainArena::new(),
            batch: Vec::new(),
            chain_store: Vec::new(),
            drops: [0; 8],
            deliveries: Vec::new(),
            staged: Vec::with_capacity(staged_counts[n]),
            next_staged: 0,
            #[cfg(feature = "telemetry")]
            tele: lp_sample.map(|s| Box::new(crate::telemetry::LpTele::new(s))),
            #[cfg(feature = "telemetry")]
            events: 0,
        })
        .collect();

    // Pre-insert scripted actions (scenario order, matching the serial
    // `Start` handler's scheduling order) using the precompiled
    // (node, port) resolutions, then arrivals (injection order).
    // Per-LP insertion order is the tie-break at equal times, exactly
    // as the serial kernel's scheduling sequence was.
    for ((at, _), act) in scenario.iter().zip(&compiled) {
        match act {
            CompiledNetAction::Router { node, action } => {
                lps[*node as usize].push(*at, LpEvent::Act(LocalAct::Router(action.clone())))
            }
            CompiledNetAction::Cable { a, pa, b, pb, up } => {
                lps[*a as usize].push(*at, LpEvent::Act(LocalAct::Link { port: *pa, up: *up }));
                lps[*b as usize].push(*at, LpEvent::Act(LocalAct::Link { port: *pb, up: *up }));
            }
        }
    }
    for a in &arrivals {
        let f = flows[a.flow as usize];
        let pkt = NetPacket {
            id: a.id,
            injected_at: a.at,
            flow: a.flow,
            dst: f.dst as u16,
            ttl: cfg.ttl,
            hops: 0,
        };
        let in_port = topo.host_port(f.src);
        lps[f.src as usize].stage(a.at, pkt, in_port);
    }
    // The precompute replays arrivals in serial event order, so each
    // LP's slice is already (time, seq)-sorted; the sort is a cheap
    // no-op guard for that invariant (keys are unique, so unstable is
    // deterministic, and sorting never changes which key pops when).
    for lp in &mut lps {
        lp.staged
            .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    }

    #[cfg(not(feature = "telemetry"))]
    let _report: WindowReport = run_windows(&mut lps, lookahead, horizon, threads);
    // With a collector installed, run the profiled variant (identical
    // simulation result — see `run_windows_profiled`) and fold the
    // engine profile plus the per-LP conservative-lookahead
    // distribution into the non-deterministic `profile` section.
    #[cfg(feature = "telemetry")]
    match tele.as_deref_mut() {
        None => {
            let _report: WindowReport = run_windows(&mut lps, lookahead, horizon, threads);
        }
        Some(t) => {
            let mut prof = dra_des::pdes::PdesProfile::default();
            let _report: WindowReport = dra_des::pdes::run_windows_profiled(
                &mut lps, lookahead, horizon, threads, &mut prof,
            );
            let mut ep = dra_telemetry::netscope::EngineProfile {
                runs: 1,
                threads: prof.threads as u64,
                windows: prof.windows,
                cross_messages: prof.cross_messages,
                wall_ns: prof.wall_ns,
                barrier_wait_ns: prof.barrier_wait_ns,
                nonempty_windows: prof.nonempty_windows,
                window_max_events_sum: prof.window_max_events_sum,
                lp_events: prof.lp_events,
                lp_busy_windows: prof.lp_busy_windows,
                ..Default::default()
            };
            for lp in &lps {
                // Each LP's own conservative bound: the minimum
                // latency over its attached outgoing links.
                let la = lp
                    .links
                    .iter()
                    .map(|l| l.latency_s)
                    .fold(f64::INFINITY, f64::min);
                let la = if la.is_finite() {
                    la
                } else {
                    cfg.link.latency_s
                };
                ep.lookahead_min_s = ep.lookahead_min_s.min(la);
                ep.lookahead_max_s = ep.lookahead_max_s.max(la);
                ep.lookahead_sum_s += la;
                ep.lookahead_lps += 1;
            }
            t.profile = Some(ep);
        }
    }

    // Reassemble: counters sum, moments replay in delivery-time order,
    // the conservation ledger recomputes in-flight.
    let mut stats = NetStats::new(n_flows);
    stats.injected = arrivals.len() as u64;
    for a in &arrivals {
        stats.flow_injected[a.flow as usize] += 1;
    }
    let next_pkt_id = arrivals.len() as u64;
    PRECOMPUTE_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        pool.0 = std::mem::take(&mut arrivals);
        pool.1 = std::mem::take(&mut pending);
    });
    let total_deliveries: usize = lps.iter().map(|lp| lp.deliveries.len()).sum();
    let mut fibs = Vec::with_capacity(lps.len());
    let mut nodes = Vec::with_capacity(lps.len());
    let mut per_node_links = Vec::with_capacity(lps.len());
    let mut covered_busy = Vec::with_capacity(lps.len());
    let mut chain_stores: Vec<Vec<f64>> = Vec::with_capacity(lps.len());
    // Pre-sized merge: one exact allocation, filled in node order.
    let mut deliveries: Vec<(u32, Delivery)> = Vec::with_capacity(total_deliveries);
    for (i, lp) in lps.into_iter().enumerate() {
        #[cfg(feature = "telemetry")]
        if let Some(lpt) = lp.tele {
            if let Some(t) = tele.as_deref_mut() {
                // LP-id order makes the fold order thread-invariant;
                // the export re-sorts every record canonically anyway.
                t.fold_lp(i, *lpt);
            }
        }
        for (acc, d) in stats.drops.iter_mut().zip(lp.drops) {
            *acc += d;
        }
        for d in lp.deliveries {
            deliveries.push((i as u32, d));
        }
        chain_stores.push(lp.chain_store);
        nodes.push(lp.router);
        fibs.push(lp.fib);
        per_node_links.push(lp.links);
        covered_busy.push(lp.covered_busy);
    }
    // Replay order: delivery time, then — on exact ties — provenance
    // order, the serial kernel's scheduling sequence (see the module
    // docs). The sort is stable and the concatenation is node-ordered,
    // so a full-chain tie (independent provenance, measure-zero) falls
    // back to a canonical (node, local order) key; DESIGN.md records
    // that residue as the determinism contract's fine print.
    let chain_of = |(lp, d): &(u32, Delivery)| -> &[f64] {
        &chain_stores[*lp as usize][d.chain_off as usize..(d.chain_off + d.chain_len) as usize]
    };
    deliveries.sort_by(|x, y| {
        x.1.at
            .total_cmp(&y.1.at)
            .then_with(|| chain_cmp_recent_first(chain_of(x), chain_of(y)))
    });
    for (_, d) in &deliveries {
        stats.delivered += 1;
        stats.flow_delivered[d.flow as usize] += 1;
        stats.latency.push(d.latency_s);
        stats.hops.push(d.hops as f64);
    }
    stats.in_flight = stats.injected - stats.delivered - stats.dropped_total();
    NetworkSim {
        topo,
        fibs,
        nodes,
        links: LinkArena::from_per_node(per_node_links.into_iter()),
        covered_busy,
        flows,
        scenario,
        compiled,
        cfg,
        stats,
        next_pkt_id,
        #[cfg(feature = "telemetry")]
        tele,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn precompute_arrivals(flows: &[Flow], stop_s: f64, horizon: f64, seed: u64) -> Vec<Arrival> {
        let mut out = Vec::new();
        let mut pending = Vec::new();
        precompute_arrivals_into(flows, stop_s, horizon, seed, &mut out, &mut pending);
        out
    }

    #[test]
    fn arrival_precompute_matches_serial_draws() {
        // Oracle: run the serial model with no faults on a healthy
        // 2-node-ish net is overkill here — instead check the
        // precompute's own invariants: times strictly ordered per
        // flow, ids dense in time order, stop/horizon respected.
        let flows = vec![
            Flow {
                src: 0,
                dst: 1,
                rate_pps: 50_000.0,
            },
            Flow {
                src: 1,
                dst: 0,
                rate_pps: 20_000.0,
            },
        ];
        let arr = precompute_arrivals(&flows, 8e-3, 10e-3, 42);
        assert!(!arr.is_empty());
        for w in arr.windows(2) {
            assert!(w[0].at <= w[1].at, "arrivals out of time order");
            assert_eq!(w[1].id, w[0].id + 1, "ids dense in injection order");
        }
        assert!(arr.iter().all(|a| a.at < 8e-3), "stop time respected");
        // Same seed, same stream — and buffer reuse changes nothing.
        let mut again = Vec::with_capacity(1024);
        let mut pending = Vec::with_capacity(8);
        precompute_arrivals_into(&flows, 8e-3, 10e-3, 42, &mut again, &mut pending);
        assert_eq!(arr.len(), again.len());
        assert!(arr
            .iter()
            .zip(&again)
            .all(|(x, y)| x.at == y.at && x.flow == y.flow && x.id == y.id));
    }
}
