//! Parallel execution of one [`NetworkSim`]: per-router logical
//! processes on the conservative windowed engine of
//! [`dra_des::pdes`].
//!
//! ## Decomposition
//!
//! Everything a packet touches at one hop is owned by one router:
//! its [`RouterHandle`], FIB, EIB coverage budget, and the *outgoing*
//! directions of its links. The only interaction between routers is a
//! `Forward` → link → `Transit`-at-peer handoff, and the link model
//! charges at least [`LinkConfig::latency_s`](crate::link::LinkConfig)
//! of propagation on every such handoff — a static lookahead known
//! before the run. So each router becomes one [`LogicalProcess`] with
//! its own calendar queue, and cross-router packets travel as
//! [`NetCross`] messages merged at barrier windows.
//!
//! ## Replaying the serial arrival stream
//!
//! The serial model's only shared-RNG draws are flow inter-arrival
//! times, and a `FlowNext` event's time depends only on previous
//! draws — never on packet forwarding. [`precompute_arrivals`] replays
//! the serial kernel's exact draw order (a (time, sequence) total
//! order over `FlowNext` events alone) on the same seeded RNG, turning
//! the whole arrival timeline into data before any LP starts. Each
//! injection becomes a pre-inserted `Transit` at the source LP with
//! the bit-exact serial timestamp and packet id.
//!
//! ## Tie order: the provenance chain
//!
//! The serial kernel breaks exact `f64` time ties by scheduling
//! sequence, and such ties are *structural*, not measure-zero: the EIB
//! coverage budget is a fluid queue (`finish = covered_busy.max(now) +
//! c`), so under backlog the completion times it hands out chain off
//! `covered_busy` in fixed increments rather than off the packets' own
//! arrival times, and the link model serializes `busy_until` the same
//! way. Two packets can therefore collide on a timestamp bit-for-bit —
//! and because both the coverage budget and the links are *stateful*,
//! the order tied events are processed in changes which packet gets
//! which delay, not merely the order of identical outcomes.
//!
//! Serial scheduling sequence is recovered exactly from event
//! *provenance*: an event's sequence number orders it after its
//! scheduler, so two tied events compare as their schedulers' pop
//! times, recursively — i.e. as their ancestor chains of pop times,
//! most recent first. Each packet carries that chain (one `f64` pushed
//! per event popped on its behalf); each LP pops same-time batches and
//! sorts them by reversed-chain order before touching any state.
//! Chains bottom out at injections (`FlowNext` provenance) and
//! scripted actions (`Start` provenance), whose times are fresh RNG
//! draws or scenario constants with no shared lineage — only there
//! does the tie-break fall back to insertion order, and only there is
//! the contract's measure-zero fine print (documented in DESIGN.md).
//!
//! ## Merge rules
//!
//! Integer counters (injections, deliveries, per-cause drops, per-flow
//! tallies) commute exactly. The latency/hops Welford moments are
//! order-sensitive, so each LP records its deliveries and the merge
//! replays them into one Welford stream sorted by delivery time, with
//! the provenance chain breaking exact ties (stable, per-node order on
//! full-chain ties). `in_flight` is recomputed from the ledger. The CI
//! `topo-smoke` job pins `--sim-threads` 1 vs 2 vs 4 byte-identity.

use crate::link::{LinkOffer, LinkState};
use crate::net::{hop, Flow, HopOutcome, NetAction, NetConfig, NetPacket, NetworkSim};
use crate::stats::{NetDropCause, NetStats};
use dra_core::handle::RouterHandle;
use dra_core::scenario::Action;
use dra_des::calendar::CalendarQueue;
use dra_des::pdes::{run_windows, LogicalProcess, Outbox, WindowReport};
use dra_des::random::exponential;
use dra_net::fib::Dir248Fib;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One precomputed packet injection.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    at: f64,
    flow: u32,
    id: u64,
}

/// Replay the serial kernel's flow-arrival draw order.
///
/// In the serial model `Start` draws one inter-arrival per flow (in
/// flow order), then each `FlowNext` pop draws the next one — unless
/// it fires at or past `stop_s` (no draw, flow ends) or lands beyond
/// `horizon` (never pops). `FlowNext` pops follow the kernel's
/// (time, sequence) order, which restricted to arrivals is exactly
/// "earliest pending time, insertion order on ties" — reproduced here
/// with a scan (flow counts are small). Same RNG, same draw sequence,
/// bit-identical timestamps and packet ids.
fn precompute_arrivals(flows: &[Flow], stop_s: f64, horizon: f64, seed: u64) -> Vec<Arrival> {
    let mut rng = SmallRng::seed_from_u64(seed);
    // (next fire time, insertion order, alive) per flow.
    let mut pending: Vec<(f64, u64, bool)> = Vec::with_capacity(flows.len());
    let mut order = 0u64;
    for f in flows {
        let dt = exponential(&mut rng, f.rate_pps);
        pending.push((dt, order, true));
        order += 1;
    }
    let mut out = Vec::new();
    let mut id = 0u64;
    loop {
        let mut best: Option<usize> = None;
        for (i, &(t, o, alive)) in pending.iter().enumerate() {
            if alive && best.is_none_or(|b| (t, o) < (pending[b].0, pending[b].1)) {
                best = Some(i);
            }
        }
        let Some(i) = best else { break };
        let t = pending[i].0;
        if t > horizon {
            break; // the minimum is already past the horizon
        }
        if t >= stop_s {
            pending[i].2 = false; // injection window closed, no draw
            continue;
        }
        let dt = exponential(&mut rng, flows[i].rate_pps);
        pending[i] = (t + dt, order, true);
        order += 1;
        out.push(Arrival {
            at: t,
            flow: i as u32,
            id,
        });
        id += 1;
    }
    out
}

/// One delivered packet, recorded for the ordered Welford replay.
#[derive(Debug, Clone)]
struct Delivery {
    at: f64,
    /// The packet's provenance chain (see the module docs): pop times
    /// of every event processed on its behalf, injection first. Tied
    /// deliveries replay in reversed-chain order — the serial kernel's
    /// scheduling sequence.
    chain: Vec<f64>,
    latency_s: f64,
    hops: u8,
    flow: u32,
}

/// Compare two provenance chains most-recent-first: the serial
/// kernel's tie order for two equal-time events is their schedulers'
/// pop order, recursively. A chain that runs out first bottomed out
/// at its injection or scripted action — independent provenance, so
/// order is arbitrary there; shorter-first keeps it deterministic.
fn chain_cmp(a: &[f64], b: &[f64]) -> std::cmp::Ordering {
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Equal => {}
            o => return o,
        }
    }
    a.len().cmp(&b.len())
}

/// A fault action localized to one router LP. A cable cut, atomic in
/// the serial model, splits into one `Link` action per direction —
/// each direction's state is only ever read by its owning LP, so the
/// split is unobservable.
#[derive(Debug, Clone)]
enum LocalAct {
    Router(Action),
    Link { port: u16, up: bool },
}

/// Local event alphabet of one router LP (the node-local restriction
/// of [`crate::net::NetEvent`]; arrivals are pre-inserted `Transit`s).
#[derive(Debug, Clone)]
enum LpEvent {
    Transit {
        pkt: NetPacket,
        in_port: u16,
        chain: Vec<f64>,
    },
    Forward {
        pkt: NetPacket,
        out_port: u16,
        chain: Vec<f64>,
    },
    Deliver {
        pkt: NetPacket,
        chain: Vec<f64>,
    },
    Act(LocalAct),
}

impl LpEvent {
    /// The event's provenance chain (scripted actions descend from
    /// `Start`, injected transits from `FlowNext`: both empty).
    fn chain(&self) -> &[f64] {
        match self {
            LpEvent::Transit { chain, .. }
            | LpEvent::Forward { chain, .. }
            | LpEvent::Deliver { chain, .. } => chain,
            LpEvent::Act(_) => &[],
        }
    }
}

/// A packet crossing between router LPs, timestamped with its arrival
/// at the peer (≥ one link latency after the emitting `Forward`).
struct NetCross {
    time: f64,
    pkt: NetPacket,
    in_port: u16,
    chain: Vec<f64>,
}

/// One router as a logical process: the node-local slice of
/// [`NetworkSim`] plus a private calendar queue.
struct NodeLp {
    node: u32,
    cfg: NetConfig,
    router: RouterHandle,
    fib: Dir248Fib,
    /// Outgoing directed links, by port.
    links: Vec<LinkState>,
    /// `peers[p]` = node at the far end of port `p`.
    peers: Vec<u32>,
    /// `peer_in_port[p]` = the peer's port facing back at us.
    peer_in_port: Vec<u16>,
    covered_busy: f64,
    queue: CalendarQueue<LpEvent>,
    seq: u64,
    drops: [u64; 8],
    deliveries: Vec<Delivery>,
}

impl NodeLp {
    fn push(&mut self, time: f64, event: LpEvent) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(time, seq, event);
    }
}

impl LogicalProcess for NodeLp {
    type Cross = NetCross;

    fn advance_window(&mut self, window_end: f64, out: &mut Outbox<NetCross>) {
        let mut batch: Vec<(u64, LpEvent)> = Vec::new();
        while let Some((now, seq, event)) = self.queue.pop_at_or_before(window_end) {
            // Drain every event tied at `now` and order the batch by
            // provenance (the serial scheduling sequence) before any
            // of them touches the router, budget, or link state.
            // Processing only ever schedules strictly later events
            // (every hop and link delay is positive), so the batch is
            // closed once drained.
            batch.clear();
            batch.push((seq, event));
            while let Some((t, s, e)) = self.queue.pop_at_or_before(now) {
                debug_assert_eq!(t, now, "queue returned an event before the popped minimum");
                batch.push((s, e));
            }
            if batch.len() > 1 {
                batch.sort_by(|a, b| chain_cmp(a.1.chain(), b.1.chain()).then(a.0.cmp(&b.0)));
            }
            for (_seq, event) in batch.drain(..) {
                match event {
                    LpEvent::Transit {
                        mut pkt,
                        in_port,
                        mut chain,
                    } => {
                        let outcome = hop(
                            self.node,
                            &mut self.router,
                            &self.fib,
                            &mut self.covered_busy,
                            &self.cfg,
                            now,
                            &mut pkt,
                            in_port,
                        );
                        chain.push(now);
                        match outcome {
                            HopOutcome::Drop(cause) => self.drops[cause.index()] += 1,
                            HopOutcome::Deliver { delay_s } => {
                                self.push(now + delay_s, LpEvent::Deliver { pkt, chain });
                            }
                            HopOutcome::Forward { delay_s, out_port } => {
                                self.push(
                                    now + delay_s,
                                    LpEvent::Forward {
                                        pkt,
                                        out_port,
                                        chain,
                                    },
                                );
                            }
                        }
                    }
                    LpEvent::Forward {
                        pkt,
                        out_port,
                        mut chain,
                    } => {
                        let offer = self.links[out_port as usize].offer(
                            &self.cfg.link,
                            now,
                            self.cfg.packet_bytes,
                        );
                        match offer {
                            LinkOffer::Down => self.drops[NetDropCause::LinkDown.index()] += 1,
                            LinkOffer::Congested => {
                                self.drops[NetDropCause::LinkCongested.index()] += 1;
                            }
                            LinkOffer::Sent { delay_s } => {
                                chain.push(now);
                                out.send(
                                    self.peers[out_port as usize],
                                    NetCross {
                                        time: now + delay_s,
                                        pkt,
                                        in_port: self.peer_in_port[out_port as usize],
                                        chain,
                                    },
                                );
                            }
                        }
                    }
                    LpEvent::Deliver { pkt, chain } => self.deliveries.push(Delivery {
                        at: now,
                        chain,
                        latency_s: now - pkt.injected_at,
                        hops: pkt.hops,
                        flow: pkt.flow,
                    }),
                    LpEvent::Act(act) => match act {
                        LocalAct::Router(action) => {
                            self.router.advance_to(now);
                            self.router.apply(&action);
                        }
                        LocalAct::Link { port, up } => self.links[port as usize].set_up(up),
                    },
                }
            }
        }
    }

    fn accept(&mut self, msg: NetCross) {
        self.push(
            msg.time,
            LpEvent::Transit {
                pkt: msg.pkt,
                in_port: msg.in_port,
                chain: msg.chain,
            },
        );
    }
}

/// Run `net` to `horizon` on `net.cfg.sim_threads` threads and return
/// the finished network (same shape [`NetworkSim::run`]'s serial
/// branch produces). Consumes a freshly built network: any statistics
/// already accumulated are discarded.
pub(crate) fn run_parallel(net: NetworkSim, seed: u64, horizon: f64) -> NetworkSim {
    assert!(
        horizon.is_finite() && horizon >= 0.0,
        "run_parallel: bad horizon {horizon}"
    );
    let threads = net.cfg.sim_threads.max(1);
    let lookahead = net.cfg.link.latency_s;
    let NetworkSim {
        topo,
        fibs,
        nodes,
        links,
        covered_busy,
        flows,
        scenario,
        cfg,
        stats: _,
        next_pkt_id: _,
    } = net;
    let n_flows = flows.len();
    let arrivals = precompute_arrivals(&flows, cfg.traffic_stop_s, horizon, seed);

    let mut lps: Vec<NodeLp> = nodes
        .into_iter()
        .zip(fibs)
        .zip(links)
        .zip(covered_busy)
        .enumerate()
        .map(|(n, (((router, fib), links), covered_busy))| NodeLp {
            node: n as u32,
            cfg,
            router,
            fib,
            links,
            peers: topo.adj[n].clone(),
            peer_in_port: topo.rev_port[n].clone(),
            covered_busy,
            queue: CalendarQueue::new(),
            seq: 0,
            drops: [0; 8],
            deliveries: Vec::new(),
        })
        .collect();

    // Pre-insert scripted actions (scenario order, matching the serial
    // `Start` handler's scheduling order), then arrivals (injection
    // order). Per-LP insertion order is the tie-break at equal times,
    // exactly as the serial kernel's scheduling sequence was.
    let port_between = |a: u32, b: u32| -> u16 {
        topo.adj[a as usize]
            .binary_search(&b)
            .unwrap_or_else(|_| panic!("no link {a}-{b}")) as u16
    };
    for &(at, action) in &scenario {
        match action {
            NetAction::FailComponent { node, lc, kind } => lps[node as usize].push(
                at,
                LpEvent::Act(LocalAct::Router(Action::FailComponent(lc, kind))),
            ),
            NetAction::RepairLc { node, lc } => {
                lps[node as usize].push(at, LpEvent::Act(LocalAct::Router(Action::RepairLc(lc))));
            }
            NetAction::FailEib { node } => {
                lps[node as usize].push(at, LpEvent::Act(LocalAct::Router(Action::FailEib)));
            }
            NetAction::RepairEib { node } => {
                lps[node as usize].push(at, LpEvent::Act(LocalAct::Router(Action::RepairEib)));
            }
            NetAction::FailLink { a, b } => {
                let (pab, pba) = (port_between(a, b), port_between(b, a));
                lps[a as usize].push(
                    at,
                    LpEvent::Act(LocalAct::Link {
                        port: pab,
                        up: false,
                    }),
                );
                lps[b as usize].push(
                    at,
                    LpEvent::Act(LocalAct::Link {
                        port: pba,
                        up: false,
                    }),
                );
            }
            NetAction::RepairLink { a, b } => {
                let (pab, pba) = (port_between(a, b), port_between(b, a));
                lps[a as usize].push(
                    at,
                    LpEvent::Act(LocalAct::Link {
                        port: pab,
                        up: true,
                    }),
                );
                lps[b as usize].push(
                    at,
                    LpEvent::Act(LocalAct::Link {
                        port: pba,
                        up: true,
                    }),
                );
            }
        }
    }
    for a in &arrivals {
        let f = flows[a.flow as usize];
        let pkt = NetPacket {
            id: a.id,
            flow: a.flow,
            dst: f.dst,
            ttl: cfg.ttl,
            hops: 0,
            injected_at: a.at,
        };
        let in_port = topo.host_port(f.src);
        lps[f.src as usize].push(
            a.at,
            LpEvent::Transit {
                pkt,
                in_port,
                chain: Vec::new(),
            },
        );
    }

    let _report: WindowReport = run_windows(&mut lps, lookahead, horizon, threads);

    // Reassemble: counters sum, moments replay in delivery-time order,
    // the conservation ledger recomputes in-flight.
    let mut stats = NetStats::new(n_flows);
    stats.injected = arrivals.len() as u64;
    for a in &arrivals {
        stats.flow_injected[a.flow as usize] += 1;
    }
    let mut fibs = Vec::with_capacity(lps.len());
    let mut nodes = Vec::with_capacity(lps.len());
    let mut links = Vec::with_capacity(lps.len());
    let mut covered_busy = Vec::with_capacity(lps.len());
    let mut deliveries: Vec<Delivery> = Vec::new();
    for lp in lps {
        for (acc, d) in stats.drops.iter_mut().zip(lp.drops) {
            *acc += d;
        }
        deliveries.extend(lp.deliveries);
        nodes.push(lp.router);
        fibs.push(lp.fib);
        links.push(lp.links);
        covered_busy.push(lp.covered_busy);
    }
    // Replay order: delivery time, then — on exact ties — provenance
    // order, the serial kernel's scheduling sequence (see the module
    // docs). The sort is stable and the concatenation is node-ordered,
    // so a full-chain tie (independent provenance, measure-zero) falls
    // back to a canonical (node, local order) key; DESIGN.md records
    // that residue as the determinism contract's fine print.
    deliveries.sort_by(|x, y| x.at.total_cmp(&y.at).then(chain_cmp(&x.chain, &y.chain)));
    for d in &deliveries {
        stats.delivered += 1;
        stats.flow_delivered[d.flow as usize] += 1;
        stats.latency.push(d.latency_s);
        stats.hops.push(d.hops as f64);
    }
    stats.in_flight = stats.injected - stats.delivered - stats.dropped_total();
    let next_pkt_id = arrivals.len() as u64;
    NetworkSim {
        topo,
        fibs,
        nodes,
        links,
        covered_busy,
        flows,
        scenario,
        cfg,
        stats,
        next_pkt_id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_precompute_matches_serial_draws() {
        // Oracle: run the serial model with no faults on a healthy
        // 2-node-ish net is overkill here — instead check the
        // precompute's own invariants: times strictly ordered per
        // flow, ids dense in time order, stop/horizon respected.
        let flows = vec![
            Flow {
                src: 0,
                dst: 1,
                rate_pps: 50_000.0,
            },
            Flow {
                src: 1,
                dst: 0,
                rate_pps: 20_000.0,
            },
        ];
        let arr = precompute_arrivals(&flows, 8e-3, 10e-3, 42);
        assert!(!arr.is_empty());
        for w in arr.windows(2) {
            assert!(w[0].at <= w[1].at, "arrivals out of time order");
            assert_eq!(w[1].id, w[0].id + 1, "ids dense in injection order");
        }
        assert!(arr.iter().all(|a| a.at < 8e-3), "stop time respected");
        // Same seed, same stream.
        let again = precompute_arrivals(&flows, 8e-3, 10e-3, 42);
        assert_eq!(arr.len(), again.len());
        assert!(arr
            .iter()
            .zip(&again)
            .all(|(x, y)| x.at == y.at && x.flow == y.flow && x.id == y.id));
    }
}
