//! Named, versioned topo sweeps (the experiments the repo commits).

use crate::link::LinkConfig;
use crate::spec::{FlowSpec, TopoCellSpec, TopoFaultSpec, TopoSpec};
use crate::topology::TopologyKind;
use dra_core::handle::ArchKind;

/// Names `spec_by_name` accepts.
pub const NAMES: [&str; 4] = ["resilience", "smoke", "scale", "scale2"];

/// Look up a named sweep (`quick` shrinks it for CI smoke runs).
pub fn spec_by_name(name: &str, quick: bool) -> Option<TopoSpec> {
    match name {
        "resilience" => Some(resilience(quick)),
        "smoke" => Some(smoke()),
        "scale" => Some(scale(quick)),
        "scale2" => Some(scale2(quick)),
        _ => None,
    }
}

fn grid(
    name: &str,
    description: &str,
    topologies: &[TopologyKind],
    ks: &[u32],
    flows: FlowSpec,
    horizon_s: f64,
    replications: u32,
) -> TopoSpec {
    let mut cells = Vec::new();
    let mut group = 0u64;
    for &topology in topologies {
        for &k in ks {
            let faults = if k == 0 {
                TopoFaultSpec::None
            } else {
                // Degrade k routers a quarter into the run, well
                // before the injection window closes.
                TopoFaultSpec::FailRouters {
                    k,
                    at_s: horizon_s * 0.25,
                }
            };
            for arch in [ArchKind::Bdr, ArchKind::Dra] {
                cells.push(TopoCellSpec {
                    id: format!("{}/{}/{}", arch.label(), topology.label(), faults.label()),
                    arch,
                    topology,
                    link: LinkConfig::default(),
                    flows,
                    faults,
                    horizon_s,
                    drain_s: horizon_s * 0.25,
                    replications,
                    seed_group: group,
                });
            }
            group += 1;
        }
    }
    TopoSpec {
        name: name.into(),
        description: description.into(),
        master_seed: 0xD8A_70B0,
        cells,
    }
}

/// The headline composed-reliability sweep: DRA vs BDR end-to-end
/// delivery ratio and flow availability as a function of concurrently
/// degraded routers, on fat-tree(4), 4×4 mesh, and BA(64).
pub fn resilience(quick: bool) -> TopoSpec {
    let topologies: &[TopologyKind] = if quick {
        &[
            TopologyKind::FatTree { k: 4 },
            TopologyKind::Mesh2D { rows: 4, cols: 4 },
        ]
    } else {
        &[
            TopologyKind::FatTree { k: 4 },
            TopologyKind::Mesh2D { rows: 4, cols: 4 },
            TopologyKind::BarabasiAlbert {
                n: 64,
                m: 2,
                seed: 7,
            },
        ]
    };
    let ks: &[u32] = if quick { &[0, 2] } else { &[0, 1, 2, 4, 8] };
    let flows = FlowSpec {
        n_flows: if quick { 8 } else { 24 },
        rate_pps: if quick { 20_000.0 } else { 40_000.0 },
        packet_bytes: 700,
    };
    grid(
        if quick {
            "resilience-quick"
        } else {
            "resilience"
        },
        "DRA vs BDR composed network reliability under k degraded routers",
        topologies,
        ks,
        flows,
        if quick { 10e-3 } else { 20e-3 },
        if quick { 1 } else { 2 },
    )
}

/// The CI smoke sweep: fat-tree(4) + 4×4 mesh, healthy and 2-degraded,
/// sized to finish in seconds (used by the `topo-smoke` job's
/// workers-1-vs-4 byte-identity check).
pub fn smoke() -> TopoSpec {
    let mut s = resilience(true);
    s.name = "smoke".into();
    s
}

/// The parallel-engine scaling sweep: the composed-reliability
/// question at N = 64, 128, and 256 routers — the sizes where serial
/// event processing becomes the bottleneck and `--sim-threads` earns
/// its keep. Healthy and 4-degraded twins per topology; byte-identical
/// at every thread count (CI pins 1 vs 2 vs 4 on the quick variant).
pub fn scale(quick: bool) -> TopoSpec {
    let topologies: &[TopologyKind] = if quick {
        &[TopologyKind::Mesh2D { rows: 8, cols: 8 }]
    } else {
        &[
            TopologyKind::Mesh2D { rows: 8, cols: 8 },
            TopologyKind::BarabasiAlbert {
                n: 128,
                m: 2,
                seed: 11,
            },
            TopologyKind::Mesh2D { rows: 16, cols: 16 },
        ]
    };
    let ks: &[u32] = if quick { &[0] } else { &[0, 4] };
    let flows = FlowSpec {
        n_flows: if quick { 16 } else { 48 },
        rate_pps: 40_000.0,
        packet_bytes: 700,
    };
    grid(
        if quick { "scale-quick" } else { "scale" },
        "composed reliability at N = 64-256 routers (parallel-engine workload)",
        topologies,
        ks,
        flows,
        if quick { 5e-3 } else { 10e-3 },
        1,
    )
}

/// The second scaling tier, unlocked by the interned-provenance /
/// zero-alloc engine overhaul: N ≥ 512 routers (32×32 mesh and
/// BA(512)), healthy and 4-degraded twins per topology. The quick
/// variant runs one BA(512) healthy pair, sized for the CI
/// `topo-smoke` job's sim-threads 1-vs-2-vs-4 byte-identity check.
pub fn scale2(quick: bool) -> TopoSpec {
    let topologies: &[TopologyKind] = if quick {
        &[TopologyKind::BarabasiAlbert {
            n: 512,
            m: 2,
            seed: 13,
        }]
    } else {
        &[
            TopologyKind::Mesh2D { rows: 32, cols: 32 },
            TopologyKind::BarabasiAlbert {
                n: 512,
                m: 2,
                seed: 13,
            },
        ]
    };
    let ks: &[u32] = if quick { &[0] } else { &[0, 4] };
    let flows = FlowSpec {
        n_flows: if quick { 16 } else { 64 },
        rate_pps: if quick { 20_000.0 } else { 40_000.0 },
        packet_bytes: 700,
    };
    grid(
        if quick { "scale2-quick" } else { "scale2" },
        "composed reliability at N >= 512 routers (hot-path-overhaul workload)",
        topologies,
        ks,
        flows,
        if quick { 2e-3 } else { 10e-3 },
        1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn named_specs_validate() {
        for name in NAMES {
            for quick in [false, true] {
                let spec = spec_by_name(name, quick).unwrap();
                spec.validate();
                assert!(!spec.cells.is_empty());
                // BDR/DRA twins pair up: even count, shared groups.
                assert_eq!(spec.cells.len() % 2, 0);
                for pair in spec.cells.chunks(2) {
                    assert_eq!(pair[0].seed_group, pair[1].seed_group);
                    assert_ne!(pair[0].arch, pair[1].arch);
                }
            }
        }
        assert!(spec_by_name("nope", false).is_none());
    }

    #[test]
    fn scale_covers_the_target_sizes() {
        let spec = scale(false);
        let labels: Vec<String> = spec.cells.iter().map(|c| c.topology.label()).collect();
        for want in ["mesh-8x8", "ba-n128-m2", "mesh-16x16"] {
            assert!(labels.iter().any(|l| l == want), "missing {want}");
        }
    }

    #[test]
    fn scale2_reaches_512_routers() {
        let spec = scale2(false);
        let labels: Vec<String> = spec.cells.iter().map(|c| c.topology.label()).collect();
        for want in ["mesh-32x32", "ba-n512-m2"] {
            assert!(labels.iter().any(|l| l == want), "missing {want}");
        }
        for cell in &spec.cells {
            assert!(
                Topology::build(cell.topology).n_nodes() >= 512,
                "scale2 cell below the N >= 512 floor"
            );
        }
        // The quick tier stays at N >= 512 too — that's the point.
        for cell in &scale2(true).cells {
            assert!(Topology::build(cell.topology).n_nodes() >= 512);
        }
    }

    #[test]
    fn resilience_covers_the_acceptance_topologies() {
        let spec = resilience(false);
        let labels: Vec<String> = spec.cells.iter().map(|c| c.topology.label()).collect();
        for want in ["fat-tree-k4", "mesh-4x4", "ba-n64-m2"] {
            assert!(labels.iter().any(|l| l == want), "missing {want}");
        }
    }
}
