//! Topology-derived routing: shortest paths compiled into per-node
//! DIR-24-8 FIBs.
//!
//! Every node `i` owns the /24 prefix `10.(i >> 8).(i & 255).0/24`.
//! Routes are min-hop with a **lowest-neighbor-id tie-break**, computed
//! by one BFS per destination — a pure function of the graph, so every
//! run (and every worker) derives the identical forwarding state. The
//! next-hop tables are then compiled into one [`Dir248Fib`] per node:
//! the same flat lookup structure the single-router ingress path uses,
//! so network-level forwarding exercises the production FIB code. The
//! base array of an untouched DIR-24-8 is copy-on-write zero pages, so
//! N per-node instances cost resident memory only for the prefixes
//! actually inserted.

use crate::topology::Topology;
use dra_net::addr::{Ipv4Addr, Ipv4Prefix};
use dra_net::fib::{Dir248Fib, Fib};

/// The /24 prefix owned by `node` (valid for node ids < 2¹⁶).
pub fn node_prefix(node: u32) -> Ipv4Prefix {
    assert!(node < 1 << 16, "node id exceeds the 10.x.y/24 plan");
    Ipv4Prefix::new(
        Ipv4Addr((10 << 24) | ((node >> 8) << 16) | ((node & 0xff) << 8)),
        24,
    )
}

/// A host address inside `node`'s prefix (low byte from `host`).
pub fn node_addr(node: u32, host: u64) -> Ipv4Addr {
    Ipv4Addr(node_prefix(node).addr().0 | (host as u32 & 0xff))
}

/// Dense next-hop tables: `next_port[n][d]` is the egress port of
/// node `n` for traffic to node `d` (`n`'s host port when `n == d`).
#[derive(Debug, Clone)]
pub struct RouteTables {
    /// Per-node, per-destination egress ports.
    pub next_port: Vec<Vec<u16>>,
}

impl RouteTables {
    /// Derive min-hop routes for `topo` (BFS per destination,
    /// lowest-id tie-break).
    pub fn derive(topo: &Topology) -> RouteTables {
        let n = topo.n_nodes();
        let mut next_port = vec![vec![0u16; n]; n];
        let mut dist = vec![0u32; n];
        let mut queue = std::collections::VecDeque::new();
        for dst in 0..n as u32 {
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            dist[dst as usize] = 0;
            queue.clear();
            queue.push_back(dst);
            while let Some(v) = queue.pop_front() {
                for &w in &topo.adj[v as usize] {
                    if dist[w as usize] == u32::MAX {
                        dist[w as usize] = dist[v as usize] + 1;
                        queue.push_back(w);
                    }
                }
            }
            for node in 0..n as u32 {
                if node == dst {
                    next_port[node as usize][dst as usize] = topo.host_port(node);
                    continue;
                }
                assert!(dist[node as usize] != u32::MAX, "unreachable node");
                // Sorted adjacency + strict `<` ⇒ lowest-id tie-break.
                let mut best: Option<(u32, u16)> = None;
                for (p, &nb) in topo.adj[node as usize].iter().enumerate() {
                    let d = dist[nb as usize];
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, p as u16));
                    }
                }
                let (bd, bp) = best.expect("connected graph");
                debug_assert_eq!(bd, dist[node as usize] - 1, "min-hop step");
                next_port[node as usize][dst as usize] = bp;
            }
        }
        RouteTables { next_port }
    }

    /// Hop count from `src` to `dst` following the tables (for tests
    /// and latency sanity bounds).
    pub fn hops(&self, topo: &Topology, src: u32, dst: u32) -> usize {
        let mut at = src;
        let mut hops = 0;
        while at != dst {
            let p = self.next_port[at as usize][dst as usize];
            at = topo.adj[at as usize][p as usize];
            hops += 1;
            assert!(hops <= topo.n_nodes(), "routing loop {src}->{dst}");
        }
        hops
    }
}

/// Compile the route tables into one DIR-24-8 FIB per node: prefix of
/// every destination node → egress port.
pub fn compile_fibs(topo: &Topology, routes: &RouteTables) -> Vec<Dir248Fib> {
    let n = topo.n_nodes();
    (0..n)
        .map(|node| {
            let mut fib = Dir248Fib::new();
            for dst in 0..n {
                fib.insert(node_prefix(dst as u32), routes.next_port[node][dst]);
            }
            fib
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyKind;

    #[test]
    fn prefixes_are_disjoint_per_node() {
        let a = node_prefix(3);
        let b = node_prefix(259); // 10.1.3.0/24 vs 10.0.3.0/24
        assert_ne!(a, b);
        assert!(a.contains(node_addr(3, 77)));
        assert!(!a.contains(node_addr(259, 77)));
    }

    #[test]
    fn routes_terminate_min_hop_on_all_topologies() {
        for kind in [
            TopologyKind::FatTree { k: 4 },
            TopologyKind::Mesh2D { rows: 4, cols: 4 },
            TopologyKind::BarabasiAlbert {
                n: 32,
                m: 2,
                seed: 9,
            },
        ] {
            let topo = Topology::build(kind);
            let routes = RouteTables::derive(&topo);
            let n = topo.n_nodes() as u32;
            for s in 0..n {
                for d in 0..n {
                    let h = routes.hops(&topo, s, d);
                    if s == d {
                        assert_eq!(h, 0);
                    } else {
                        assert!(h >= 1 && h <= topo.n_nodes());
                    }
                }
            }
            // Mesh distances are Manhattan; spot-check corners.
            if kind == (TopologyKind::Mesh2D { rows: 4, cols: 4 }) {
                assert_eq!(routes.hops(&topo, 0, 15), 6);
            }
        }
    }

    #[test]
    fn fibs_agree_with_tables() {
        let topo = Topology::build(TopologyKind::Mesh2D { rows: 3, cols: 3 });
        let routes = RouteTables::derive(&topo);
        let fibs = compile_fibs(&topo, &routes);
        for (node, fib) in fibs.iter().enumerate() {
            assert_eq!(fib.len(), topo.n_nodes());
            for dst in 0..topo.n_nodes() as u32 {
                assert_eq!(
                    fib.lookup(node_addr(dst, 42)),
                    Some(routes.next_port[node][dst as usize]),
                );
            }
        }
    }
}
