//! Per-node seed derivation for co-simulated routers.
//!
//! The campaign layer already derives per-(cell, replication, stream)
//! seeds with SplitMix64 ([`dra_campaign::seed`]). The network layer
//! adds one more coordinate — the **node id** — so that N routers
//! co-simulated inside one cell never share randomness: each node's
//! embedded router RNG and sampled fault timeline draw from a private
//! SplitMix64 stream.
//!
//! Why streams stay disjoint: [`splitmix64`] advances its state by a
//! fixed odd increment γ and outputs a bijective mix of the state, so
//! stream *i* is `mix(sᵢ + k·γ)` for draw k. Two streams can only
//! collide within their first D draws if their derived starting states
//! differ by less than D multiples of γ — a ~2⁻⁵⁰ event for D = 10⁴
//! under the avalanche mixing of [`node_seed`], and a *fixed* property
//! of the released constants (the proptest in
//! `crates/topo/tests/proptest_seeds.rs` pins it).

use dra_campaign::seed::splitmix64;

/// Domain separator so node streams can never replay a campaign
/// cell/replication stream ("topo node" in hexspeak).
const NODE_DOMAIN: u64 = 0x7090_40DE;

/// Derive the seed of node `node`'s private stream from a cell-level
/// base seed (itself produced by [`dra_campaign::seed::derive_seed`]).
pub fn node_seed(base: u64, node: u64) -> u64 {
    let mut s = base ^ NODE_DOMAIN.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let _ = splitmix64(&mut s);
    s ^= node.wrapping_add(1).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let _ = splitmix64(&mut s);
    splitmix64(&mut s)
}

/// The SplitMix64 stream rooted at [`node_seed`]`(base, node)`.
#[derive(Debug, Clone)]
pub struct NodeSeedStream {
    state: u64,
}

impl NodeSeedStream {
    /// Stream for `node` under `base`.
    pub fn new(base: u64, node: u64) -> Self {
        NodeSeedStream {
            state: node_seed(base, node),
        }
    }
}

impl Iterator for NodeSeedStream {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(splitmix64(&mut self.state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_seed_is_deterministic_and_node_sensitive() {
        assert_eq!(node_seed(1, 2), node_seed(1, 2));
        assert_ne!(node_seed(1, 2), node_seed(1, 3));
        assert_ne!(node_seed(1, 2), node_seed(2, 2));
    }

    #[test]
    fn stream_matches_repeated_splitmix() {
        let mut st = NodeSeedStream::new(5, 9);
        let mut state = node_seed(5, 9);
        for _ in 0..100 {
            assert_eq!(st.next(), Some(splitmix64(&mut state)));
        }
    }
}
