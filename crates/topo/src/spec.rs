//! Declarative topo-sweep specs and their canonical manifests.
//!
//! A [`TopoSpec`] is a grid of [`TopoCellSpec`]s — architecture ×
//! topology × fault spec × traffic — exactly parallel to
//! [`dra_campaign::spec::CampaignSpec`]. The manifest serializes every
//! behavior-relevant field in a fixed order; its FNV-1a digest stamps
//! the artifact, so two artifacts with equal digests came from equal
//! experiments.
//!
//! Determinism contract (same as the campaign layer, one level up):
//! cell results are pure functions of `(master_seed, seed_group,
//! replication, cell parameters)`. Worker count, scheduling order, and
//! resume history cannot change a byte of the artifact. BDR/DRA twin
//! cells share a `seed_group`, giving both architectures identical
//! flow placements, arrival processes, and fault timelines.

use crate::link::LinkConfig;
use crate::topology::TopologyKind;
use dra_campaign::json::Json;
use dra_core::handle::ArchKind;

/// Network-level fault model of one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopoFaultSpec {
    /// No faults (calibration baseline).
    None,
    /// At `at_s`, degrade `k` spread-sampled routers: fail the SRU on
    /// every even-indexed linecard (half the ports). BDR loses those
    /// ports; DRA covers them over the EIB — the headline comparison.
    FailRouters {
        /// Number of degraded routers.
        k: u32,
        /// Failure instant, seconds.
        at_s: f64,
    },
    /// At `at_s`, cut `k` spread-sampled cables (both directions).
    FailLinks {
        /// Number of cut links.
        k: u32,
        /// Failure instant, seconds.
        at_s: f64,
    },
    /// Every router runs its own renewal fault process
    /// ([`dra_core::scenario::FaultProcess`], per-component paper
    /// rates, hot-swap repair) sampled on the node's private seed
    /// stream. `delay_scale` maps sampled hours to simulated seconds —
    /// smaller is a harsher effective fault rate.
    Renewal {
        /// Hours → seconds compression factor.
        delay_scale: f64,
        /// Repair time in (pre-scale) hours.
        repair_h: f64,
    },
}

impl TopoFaultSpec {
    /// Short stable label for cell ids.
    pub fn label(&self) -> String {
        match self {
            TopoFaultSpec::None => "healthy".into(),
            TopoFaultSpec::FailRouters { k, .. } => format!("r{k}"),
            TopoFaultSpec::FailLinks { k, .. } => format!("l{k}"),
            TopoFaultSpec::Renewal { delay_scale, .. } => format!("renewal-{delay_scale:e}"),
        }
    }

    fn manifest(&self) -> Json {
        match *self {
            TopoFaultSpec::None => Json::obj(vec![("kind", Json::Str("none".into()))]),
            TopoFaultSpec::FailRouters { k, at_s } => Json::obj(vec![
                ("kind", Json::Str("fail_routers".into())),
                ("k", Json::Num(k as f64)),
                ("at_s", Json::Num(at_s)),
            ]),
            TopoFaultSpec::FailLinks { k, at_s } => Json::obj(vec![
                ("kind", Json::Str("fail_links".into())),
                ("k", Json::Num(k as f64)),
                ("at_s", Json::Num(at_s)),
            ]),
            TopoFaultSpec::Renewal {
                delay_scale,
                repair_h,
            } => Json::obj(vec![
                ("kind", Json::Str("renewal".into())),
                ("delay_scale", Json::Num(delay_scale)),
                ("repair_h", Json::Num(repair_h)),
            ]),
        }
    }
}

/// Traffic of one cell: `n_flows` Poisson flows between distinct
/// host nodes drawn from the cell's seed-group stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Number of concurrent flows.
    pub n_flows: u32,
    /// Per-flow mean packet rate, packets/second.
    pub rate_pps: f64,
    /// End-to-end packet size, bytes.
    pub packet_bytes: u32,
}

/// One grid cell of a topo sweep.
#[derive(Debug, Clone)]
pub struct TopoCellSpec {
    /// Unique human-readable id (e.g. `bdr/mesh-4x4/r2`).
    pub id: String,
    /// Architecture under test.
    pub arch: ArchKind,
    /// Topology to instantiate.
    pub topology: TopologyKind,
    /// Link parameters.
    pub link: LinkConfig,
    /// Traffic.
    pub flows: FlowSpec,
    /// Fault model.
    pub faults: TopoFaultSpec,
    /// Simulated horizon, seconds.
    pub horizon_s: f64,
    /// Injection stops `drain_s` before the horizon so in-flight
    /// packets resolve.
    pub drain_s: f64,
    /// Independent replications (aggregated with Welford).
    pub replications: u32,
    /// Seed-derivation group: cells sharing a group (BDR/DRA twins)
    /// see identical flow placements, arrivals, and fault timelines.
    pub seed_group: u64,
}

impl TopoCellSpec {
    fn manifest(&self) -> Json {
        let t = match self.topology {
            TopologyKind::FatTree { k } => Json::obj(vec![
                ("kind", Json::Str("fat_tree".into())),
                ("k", Json::Num(k as f64)),
            ]),
            TopologyKind::Mesh2D { rows, cols } => Json::obj(vec![
                ("kind", Json::Str("mesh2d".into())),
                ("rows", Json::Num(rows as f64)),
                ("cols", Json::Num(cols as f64)),
            ]),
            TopologyKind::BarabasiAlbert { n, m, seed } => Json::obj(vec![
                ("kind", Json::Str("barabasi_albert".into())),
                ("n", Json::Num(n as f64)),
                ("m", Json::Num(m as f64)),
                ("seed", Json::Num(seed as f64)),
            ]),
        };
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("arch", Json::Str(self.arch.label().into())),
            ("topology", t),
            (
                "link",
                Json::obj(vec![
                    ("latency_s", Json::Num(self.link.latency_s)),
                    ("bandwidth_bps", Json::Num(self.link.bandwidth_bps)),
                    ("max_backlog_s", Json::Num(self.link.max_backlog_s)),
                ]),
            ),
            (
                "flows",
                Json::obj(vec![
                    ("n_flows", Json::Num(self.flows.n_flows as f64)),
                    ("rate_pps", Json::Num(self.flows.rate_pps)),
                    ("packet_bytes", Json::Num(self.flows.packet_bytes as f64)),
                ]),
            ),
            ("faults", self.faults.manifest()),
            ("horizon_s", Json::Num(self.horizon_s)),
            ("drain_s", Json::Num(self.drain_s)),
            ("replications", Json::Num(self.replications as f64)),
            ("seed_group", Json::Num(self.seed_group as f64)),
        ])
    }
}

/// A whole topo sweep.
#[derive(Debug, Clone)]
pub struct TopoSpec {
    /// Sweep name (artifact + default output file name).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Master seed all per-cell streams derive from.
    pub master_seed: u64,
    /// The grid.
    pub cells: Vec<TopoCellSpec>,
}

impl TopoSpec {
    /// Canonical manifest: every behavior-relevant field, fixed order.
    pub fn manifest(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("description", Json::Str(self.description.clone())),
            ("master_seed", Json::Num(self.master_seed as f64)),
            (
                "cells",
                Json::Arr(self.cells.iter().map(TopoCellSpec::manifest).collect()),
            ),
        ])
    }

    /// FNV-1a digest of the compact manifest (16 hex chars).
    pub fn digest(&self) -> String {
        let text = self.manifest().to_string_compact();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// Sanity-check the grid.
    ///
    /// # Panics
    /// Panics on duplicate cell ids or degenerate cell parameters.
    pub fn validate(&self) {
        let mut ids: Vec<&str> = self.cells.iter().map(|c| c.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), self.cells.len(), "duplicate cell ids");
        for c in &self.cells {
            assert!(c.horizon_s > 0.0 && c.horizon_s.is_finite(), "{}", c.id);
            assert!(
                c.drain_s >= 0.0 && c.drain_s < c.horizon_s,
                "{}: drain must leave an injection window",
                c.id
            );
            assert!(c.replications >= 1, "{}", c.id);
            assert!(c.flows.n_flows >= 1 && c.flows.rate_pps > 0.0, "{}", c.id);
            assert!(c.flows.packet_bytes > 0, "{}", c.id);
            if let TopoFaultSpec::FailRouters { at_s, .. } | TopoFaultSpec::FailLinks { at_s, .. } =
                c.faults
            {
                assert!(
                    (0.0..c.horizon_s).contains(&at_s),
                    "{}: fault instant outside horizon",
                    c.id
                );
            }
            if let TopoFaultSpec::Renewal {
                delay_scale,
                repair_h,
            } = c.faults
            {
                assert!(delay_scale > 0.0 && repair_h > 0.0, "{}", c.id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: &str) -> TopoCellSpec {
        TopoCellSpec {
            id: id.into(),
            arch: ArchKind::Bdr,
            topology: TopologyKind::Mesh2D { rows: 3, cols: 3 },
            link: LinkConfig::default(),
            flows: FlowSpec {
                n_flows: 4,
                rate_pps: 1e4,
                packet_bytes: 700,
            },
            faults: TopoFaultSpec::None,
            horizon_s: 1e-2,
            drain_s: 2e-3,
            replications: 1,
            seed_group: 0,
        }
    }

    #[test]
    fn digest_tracks_content() {
        let spec = TopoSpec {
            name: "t".into(),
            description: "d".into(),
            master_seed: 1,
            cells: vec![cell("a")],
        };
        spec.validate();
        let d1 = spec.digest();
        assert_eq!(d1.len(), 16);
        let mut spec2 = spec.clone();
        assert_eq!(spec2.digest(), d1, "digest is a pure function");
        spec2.cells[0].flows.rate_pps = 2e4;
        assert_ne!(spec2.digest(), d1, "digest sees traffic changes");
    }

    #[test]
    #[should_panic(expected = "duplicate cell ids")]
    fn duplicate_ids_rejected() {
        TopoSpec {
            name: "t".into(),
            description: "d".into(),
            master_seed: 1,
            cells: vec![cell("a"), cell("a")],
        }
        .validate();
    }
}
