//! Network-level composed metrics: packet conservation, end-to-end
//! delivery, and per-flow availability.

use dra_des::stats::Welford;

/// Why the network dropped an end-to-end packet.
///
/// These compose the single-router [`DropCause`]s one level up: a
/// packet that would die inside a router for *any* reason at a hop is
/// charged to the hop-level cause visible to the network.
///
/// [`DropCause`]: dra_router::metrics::DropCause
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum NetDropCause {
    /// The linecard the packet arrived on cannot serve it.
    IngressDown = 0,
    /// The linecard toward the next hop cannot serve it.
    EgressDown = 1,
    /// The transit router's switching fabric has too few planes.
    FabricDown = 2,
    /// The transit router's FIB had no route for the destination.
    NoRoute = 3,
    /// The selected outgoing link is down.
    LinkDown = 4,
    /// The selected outgoing link's serialization backlog overflowed.
    LinkCongested = 5,
    /// A DRA coverage detour existed but the EIB's promised bandwidth
    /// was oversubscribed at this node.
    CoverageSaturated = 6,
    /// Hop budget exhausted (defensive; min-hop routes are loop-free).
    TtlExceeded = 7,
}

impl NetDropCause {
    /// Every cause, in a fixed order (artifact field order).
    pub const ALL: [NetDropCause; 8] = [
        NetDropCause::IngressDown,
        NetDropCause::EgressDown,
        NetDropCause::FabricDown,
        NetDropCause::NoRoute,
        NetDropCause::LinkDown,
        NetDropCause::LinkCongested,
        NetDropCause::CoverageSaturated,
        NetDropCause::TtlExceeded,
    ];

    /// Stable dense index. Constant-time: the explicit discriminants
    /// *are* the `ALL` positions (pinned by
    /// `cause_names_and_indices_are_stable`) — this runs on every
    /// dropped packet, so no linear scan.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (artifact keys).
    pub fn name(self) -> &'static str {
        match self {
            NetDropCause::IngressDown => "ingress_down",
            NetDropCause::EgressDown => "egress_down",
            NetDropCause::FabricDown => "fabric_down",
            NetDropCause::NoRoute => "no_route",
            NetDropCause::LinkDown => "link_down",
            NetDropCause::LinkCongested => "link_congested",
            NetDropCause::CoverageSaturated => "coverage_saturated",
            NetDropCause::TtlExceeded => "ttl_exceeded",
        }
    }
}

/// Counters and moments for one network run.
///
/// Conservation invariant (checked by `tests/topo_invariants.rs` and
/// by artifact validation): `injected == delivered + dropped_total()
/// + in_flight` at every instant the model is quiescent.
#[derive(Debug, Clone)]
pub struct NetStats {
    /// Packets handed to source routers.
    pub injected: u64,
    /// Packets that reached their destination's host port.
    pub delivered: u64,
    /// Drops by cause (indexed by [`NetDropCause::index`]).
    pub drops: [u64; 8],
    /// Packets currently inside the network.
    pub in_flight: u64,
    /// End-to-end latency of delivered packets, seconds.
    pub latency: Welford,
    /// Router hops of delivered packets.
    pub hops: Welford,
    /// Per-flow injected counts.
    pub flow_injected: Vec<u64>,
    /// Per-flow delivered counts.
    pub flow_delivered: Vec<u64>,
}

impl NetStats {
    /// Zeroed stats for `n_flows` flows.
    pub fn new(n_flows: usize) -> Self {
        NetStats {
            injected: 0,
            delivered: 0,
            drops: [0; 8],
            in_flight: 0,
            latency: Welford::new(),
            hops: Welford::new(),
            flow_injected: vec![0; n_flows],
            flow_delivered: vec![0; n_flows],
        }
    }

    /// Record an injection for `flow`.
    pub fn inject(&mut self, flow: u32) {
        self.injected += 1;
        self.in_flight += 1;
        self.flow_injected[flow as usize] += 1;
    }

    /// Record a delivery for `flow`.
    pub fn deliver(&mut self, flow: u32, latency_s: f64, hops: u32) {
        self.delivered += 1;
        self.in_flight -= 1;
        self.flow_delivered[flow as usize] += 1;
        self.latency.push(latency_s);
        self.hops.push(hops as f64);
    }

    /// Record a drop.
    pub fn drop_packet(&mut self, cause: NetDropCause) {
        self.drops[cause.index()] += 1;
        self.in_flight -= 1;
    }

    /// Total drops across causes.
    pub fn dropped_total(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// Network packet delivery ratio (1.0 when nothing was injected).
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }

    /// Fraction of flows whose own delivery ratio is ≥ `threshold`
    /// (flows that injected nothing count as available).
    pub fn flow_availability(&self, threshold: f64) -> f64 {
        if self.flow_injected.is_empty() {
            return 1.0;
        }
        let ok = self
            .flow_injected
            .iter()
            .zip(&self.flow_delivered)
            .filter(|&(&inj, &del)| inj == 0 || del as f64 >= threshold * inj as f64)
            .count();
        ok as f64 / self.flow_injected.len() as f64
    }

    /// `injected == delivered + dropped + in_flight`?
    pub fn conserved(&self) -> bool {
        self.injected == self.delivered + self.dropped_total() + self.in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_names_and_indices_are_stable() {
        for (i, c) in NetDropCause::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(NetDropCause::ALL[0].name(), "ingress_down");
        assert_eq!(NetDropCause::ALL[7].name(), "ttl_exceeded");
    }

    #[test]
    fn conservation_accounting() {
        let mut s = NetStats::new(2);
        s.inject(0);
        s.inject(1);
        s.inject(1);
        assert_eq!(s.in_flight, 3);
        s.deliver(0, 1e-4, 3);
        s.drop_packet(NetDropCause::LinkCongested);
        assert!(s.conserved());
        assert_eq!(s.dropped_total(), 1);
        assert_eq!(s.delivery_ratio(), 1.0 / 3.0);
        // Flow 0 fully delivered; flow 1 delivered 0 of 2.
        assert_eq!(s.flow_availability(0.99), 0.5);
        s.deliver(1, 2e-4, 4);
        assert!(s.conserved());
        assert_eq!(s.in_flight, 0);
    }

    #[test]
    fn flow_availability_threshold_edges() {
        let mut s = NetStats::new(3);
        s.inject(0); // flow 0: 1 injected, 0 delivered
        s.inject(1);
        s.inject(1);
        s.deliver(1, 1e-4, 2); // flow 1: 2 injected, 1 delivered
        s.drop_packet(NetDropCause::NoRoute);
        s.drop_packet(NetDropCause::NoRoute);
        // flow 2: injected nothing — always counts as available.
        // Threshold 0.0: `del >= 0` holds for every flow, even flow 0
        // with zero deliveries.
        assert_eq!(s.flow_availability(0.0), 1.0);
        // Threshold 1.0: only fully-delivered (or idle) flows count.
        // Flow 0 (0 of 1) and flow 1 (1 of 2) both miss; flow 2 idles.
        assert_eq!(s.flow_availability(1.0), 1.0 / 3.0);
        s.inject(1);
        s.deliver(1, 1e-4, 2);
        // Flow 1 is now 2 of 3 — still short of 1.0 but over 0.5.
        assert_eq!(s.flow_availability(1.0), 1.0 / 3.0);
        assert_eq!(s.flow_availability(0.5), 2.0 / 3.0);
        // No flows at all: vacuously available.
        assert_eq!(NetStats::new(0).flow_availability(1.0), 1.0);
    }

    #[test]
    fn merged_partial_stats_stay_conserved() {
        // The parallel engine reassembles one NetStats from per-LP
        // partials: integer counters sum, in_flight is recomputed as
        // injected − delivered − dropped. A merge mimicking an
        // error-cell aggregation (one partial contributed only drops)
        // must still satisfy the conservation ledger.
        let mut total = NetStats::new(2);
        let mut a = NetStats::new(2);
        a.inject(0);
        a.inject(0);
        a.deliver(0, 1e-4, 3);
        let mut b = NetStats::new(2);
        b.inject(1);
        b.drop_packet(NetDropCause::LinkDown);
        for part in [&a, &b] {
            total.injected += part.injected;
            total.delivered += part.delivered;
            for (acc, d) in total.drops.iter_mut().zip(part.drops) {
                *acc += d;
            }
            for (acc, v) in total.flow_injected.iter_mut().zip(&part.flow_injected) {
                *acc += v;
            }
            for (acc, v) in total.flow_delivered.iter_mut().zip(&part.flow_delivered) {
                *acc += v;
            }
        }
        total.in_flight = total.injected - total.delivered - total.dropped_total();
        assert!(total.conserved());
        assert_eq!(total.in_flight, 1);
        assert_eq!(total.dropped_total(), 1);
    }
}
