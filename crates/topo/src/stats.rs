//! Network-level composed metrics: packet conservation, end-to-end
//! delivery, and per-flow availability.

use dra_des::stats::Welford;

/// Why the network dropped an end-to-end packet.
///
/// These compose the single-router [`DropCause`]s one level up: a
/// packet that would die inside a router for *any* reason at a hop is
/// charged to the hop-level cause visible to the network.
///
/// [`DropCause`]: dra_router::metrics::DropCause
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetDropCause {
    /// The linecard the packet arrived on cannot serve it.
    IngressDown,
    /// The linecard toward the next hop cannot serve it.
    EgressDown,
    /// The transit router's switching fabric has too few planes.
    FabricDown,
    /// The transit router's FIB had no route for the destination.
    NoRoute,
    /// The selected outgoing link is down.
    LinkDown,
    /// The selected outgoing link's serialization backlog overflowed.
    LinkCongested,
    /// A DRA coverage detour existed but the EIB's promised bandwidth
    /// was oversubscribed at this node.
    CoverageSaturated,
    /// Hop budget exhausted (defensive; min-hop routes are loop-free).
    TtlExceeded,
}

impl NetDropCause {
    /// Every cause, in a fixed order (artifact field order).
    pub const ALL: [NetDropCause; 8] = [
        NetDropCause::IngressDown,
        NetDropCause::EgressDown,
        NetDropCause::FabricDown,
        NetDropCause::NoRoute,
        NetDropCause::LinkDown,
        NetDropCause::LinkCongested,
        NetDropCause::CoverageSaturated,
        NetDropCause::TtlExceeded,
    ];

    /// Stable dense index.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("in ALL")
    }

    /// Stable snake_case name (artifact keys).
    pub fn name(self) -> &'static str {
        match self {
            NetDropCause::IngressDown => "ingress_down",
            NetDropCause::EgressDown => "egress_down",
            NetDropCause::FabricDown => "fabric_down",
            NetDropCause::NoRoute => "no_route",
            NetDropCause::LinkDown => "link_down",
            NetDropCause::LinkCongested => "link_congested",
            NetDropCause::CoverageSaturated => "coverage_saturated",
            NetDropCause::TtlExceeded => "ttl_exceeded",
        }
    }
}

/// Counters and moments for one network run.
///
/// Conservation invariant (checked by `tests/topo_invariants.rs` and
/// by artifact validation): `injected == delivered + dropped_total()
/// + in_flight` at every instant the model is quiescent.
#[derive(Debug, Clone)]
pub struct NetStats {
    /// Packets handed to source routers.
    pub injected: u64,
    /// Packets that reached their destination's host port.
    pub delivered: u64,
    /// Drops by cause (indexed by [`NetDropCause::index`]).
    pub drops: [u64; 8],
    /// Packets currently inside the network.
    pub in_flight: u64,
    /// End-to-end latency of delivered packets, seconds.
    pub latency: Welford,
    /// Router hops of delivered packets.
    pub hops: Welford,
    /// Per-flow injected counts.
    pub flow_injected: Vec<u64>,
    /// Per-flow delivered counts.
    pub flow_delivered: Vec<u64>,
}

impl NetStats {
    /// Zeroed stats for `n_flows` flows.
    pub fn new(n_flows: usize) -> Self {
        NetStats {
            injected: 0,
            delivered: 0,
            drops: [0; 8],
            in_flight: 0,
            latency: Welford::new(),
            hops: Welford::new(),
            flow_injected: vec![0; n_flows],
            flow_delivered: vec![0; n_flows],
        }
    }

    /// Record an injection for `flow`.
    pub fn inject(&mut self, flow: u32) {
        self.injected += 1;
        self.in_flight += 1;
        self.flow_injected[flow as usize] += 1;
    }

    /// Record a delivery for `flow`.
    pub fn deliver(&mut self, flow: u32, latency_s: f64, hops: u32) {
        self.delivered += 1;
        self.in_flight -= 1;
        self.flow_delivered[flow as usize] += 1;
        self.latency.push(latency_s);
        self.hops.push(hops as f64);
    }

    /// Record a drop.
    pub fn drop_packet(&mut self, cause: NetDropCause) {
        self.drops[cause.index()] += 1;
        self.in_flight -= 1;
    }

    /// Total drops across causes.
    pub fn dropped_total(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// Network packet delivery ratio (1.0 when nothing was injected).
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }

    /// Fraction of flows whose own delivery ratio is ≥ `threshold`
    /// (flows that injected nothing count as available).
    pub fn flow_availability(&self, threshold: f64) -> f64 {
        if self.flow_injected.is_empty() {
            return 1.0;
        }
        let ok = self
            .flow_injected
            .iter()
            .zip(&self.flow_delivered)
            .filter(|&(&inj, &del)| inj == 0 || del as f64 >= threshold * inj as f64)
            .count();
        ok as f64 / self.flow_injected.len() as f64
    }

    /// `injected == delivered + dropped + in_flight`?
    pub fn conserved(&self) -> bool {
        self.injected == self.delivered + self.dropped_total() + self.in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_names_and_indices_are_stable() {
        for (i, c) in NetDropCause::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(NetDropCause::ALL[0].name(), "ingress_down");
        assert_eq!(NetDropCause::ALL[7].name(), "ttl_exceeded");
    }

    #[test]
    fn conservation_accounting() {
        let mut s = NetStats::new(2);
        s.inject(0);
        s.inject(1);
        s.inject(1);
        assert_eq!(s.in_flight, 3);
        s.deliver(0, 1e-4, 3);
        s.drop_packet(NetDropCause::LinkCongested);
        assert!(s.conserved());
        assert_eq!(s.dropped_total(), 1);
        assert_eq!(s.delivery_ratio(), 1.0 / 3.0);
        // Flow 0 fully delivered; flow 1 delivered 0 of 2.
        assert_eq!(s.flow_availability(0.99), 0.5);
        s.deliver(1, 2e-4, 4);
        assert!(s.conserved());
        assert_eq!(s.in_flight, 0);
    }
}
