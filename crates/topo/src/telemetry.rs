//! Network-scope observability for [`NetworkSim`] runs.
//!
//! This module is the producer side of
//! [`dra_telemetry::NetScopeSnapshot`]: a per-run collector
//! ([`NetTele`]) that both the serial kernel and the parallel
//! per-router logical processes feed, and an exporter that turns the
//! collected raw points into the snapshot's deterministic sections —
//! per-router counters, the fault-forensics ledger, hop-resolved flow
//! spans — plus a Perfetto (Chrome `trace_event`) trace with one
//! track per router and flow arrows linking a packet's spans across
//! tracks.
//!
//! ## How determinism is preserved at any `--sim-threads`
//!
//! The collector records *facts with sim-time stamps*, never
//! collection-order artifacts:
//!
//! * per-node counters — each node's events replay identically under
//!   the windowed engine (the byte-identity contract of
//!   [`crate::pdes`]), so per-node sums match the serial kernel;
//! * packet **outcome points** `(t, packet, flow, code)` for every
//!   terminated packet — the forensics ledger (flow up/down
//!   transitions, per-action drop census) is *derived at export* from
//!   the canonically sorted outcome list;
//! * **hop points** (one [`FlowSpan`] each) for sampled packets only,
//!   canonically sorted at export.
//!
//! Scripted-action forensic entries are derived from the scenario
//! itself, not from runtime hooks, so they cannot depend on the
//! engine. The one intentionally non-deterministic part — the PDES
//! engine profile — is kept in the snapshot's separate `profile`
//! section (see the [`dra_telemetry::netscope`] module docs).

use crate::link::LinkOffer;
use crate::net::{HopOutcome, NetAction, NetPacket, NetworkSim};
use crate::stats::NetDropCause;
use dra_router::components::ComponentKind;
use dra_telemetry::{
    is_sampled, EngineProfile, FlowSpan, ForensicEntry, ForensicKind, NetScopeSnapshot,
    NodeCounters, SpanKind, TraceEvent, NET_DROP_CAUSES,
};

/// One packet termination: `(sim_time, packet, flow, code)` with
/// `code` 0 = delivered, `cause_index + 1` = dropped.
pub(crate) type Outcome = (f64, u64, u32, u8);

/// Preallocated outcome capacity: terminations up to this count do not
/// grow the vector, keeping the steady-state hot path allocation-free
/// for the workloads the no-alloc tests pin (growth beyond is
/// amortized doubling, not per-event allocation).
const OUTCOMES_PREALLOC: usize = 65_536;

/// Engine-agnostic event collector shared by the serial kernel (via
/// [`NetTele`]) and each parallel logical process (via [`LpTele`]).
#[derive(Debug, Clone)]
pub(crate) struct Collect {
    /// Lifecycle sampling modulus for hop points (0 = spans off).
    pub(crate) sample_every: u64,
    /// Every packet termination (delivered and dropped).
    pub(crate) outcomes: Vec<Outcome>,
    /// Hop points of sampled packets (already in [`FlowSpan`] form).
    pub(crate) points: Vec<FlowSpan>,
}

impl Collect {
    fn new(sample_every: u64, prealloc: usize) -> Collect {
        Collect {
            sample_every,
            outcomes: Vec::with_capacity(prealloc),
            points: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn is_sampled(&self, packet: u64) -> bool {
        is_sampled(packet, self.sample_every)
    }

    /// A `Transit` event resolved to `outcome` at `now` on `node`.
    /// Call with the *post-hop* packet (hop count already advanced).
    #[inline]
    pub(crate) fn transit_outcome(
        &mut self,
        nc: &mut NodeCounters,
        now: f64,
        node: u32,
        pkt: &NetPacket,
        outcome: &HopOutcome,
        node_transit_s: f64,
    ) {
        nc.transits += 1;
        match *outcome {
            HopOutcome::Drop(cause) => {
                nc.drops[cause.index()] += 1;
                self.outcomes
                    .push((now, pkt.id, pkt.flow, cause.index() as u8 + 1));
                if self.is_sampled(pkt.id) {
                    self.points.push(FlowSpan {
                        packet: pkt.id,
                        flow: pkt.flow,
                        node,
                        t0: now,
                        t1: now,
                        kind: SpanKind::Drop,
                        aux: cause.index() as u32,
                    });
                }
            }
            HopOutcome::Deliver { delay_s } | HopOutcome::Forward { delay_s, .. } => {
                // Covered transits are inferred from the delay: the
                // EIB serialization charge strictly exceeds the
                // healthy transit time, and nothing else inflates it.
                if delay_s > node_transit_s {
                    nc.covered += 1;
                }
                if self.is_sampled(pkt.id) {
                    self.points.push(FlowSpan {
                        packet: pkt.id,
                        flow: pkt.flow,
                        node,
                        t0: now,
                        t1: now + delay_s,
                        kind: SpanKind::Transit,
                        aux: 0,
                    });
                }
            }
        }
    }

    /// A `Forward` event resolved against the link at `now`.
    #[inline]
    pub(crate) fn forward_outcome(
        &mut self,
        nc: &mut NodeCounters,
        now: f64,
        node: u32,
        out_port: u16,
        pkt: &NetPacket,
        offer: &LinkOffer,
    ) {
        let cause = match *offer {
            LinkOffer::Sent { delay_s } => {
                nc.forwards += 1;
                if self.is_sampled(pkt.id) {
                    self.points.push(FlowSpan {
                        packet: pkt.id,
                        flow: pkt.flow,
                        node,
                        t0: now,
                        t1: now + delay_s,
                        kind: SpanKind::Link,
                        aux: out_port as u32,
                    });
                }
                return;
            }
            LinkOffer::Down => NetDropCause::LinkDown,
            LinkOffer::Congested => NetDropCause::LinkCongested,
        };
        nc.drops[cause.index()] += 1;
        self.outcomes
            .push((now, pkt.id, pkt.flow, cause.index() as u8 + 1));
        if self.is_sampled(pkt.id) {
            self.points.push(FlowSpan {
                packet: pkt.id,
                flow: pkt.flow,
                node,
                t0: now,
                t1: now,
                kind: SpanKind::Drop,
                aux: cause.index() as u32,
            });
        }
    }

    /// A `Deliver` event at the destination host port.
    #[inline]
    pub(crate) fn delivered(
        &mut self,
        nc: &mut NodeCounters,
        now: f64,
        node: u32,
        pkt: &NetPacket,
    ) {
        nc.delivered += 1;
        self.outcomes.push((now, pkt.id, pkt.flow, 0));
        if self.is_sampled(pkt.id) {
            self.points.push(FlowSpan {
                packet: pkt.id,
                flow: pkt.flow,
                node,
                t0: now,
                t1: now,
                kind: SpanKind::Deliver,
                aux: pkt.hops as u32,
            });
        }
    }
}

/// Per-logical-process collector for the windowed parallel engine:
/// one per router LP, folded into the run's [`NetTele`] in LP-id
/// order at the final barrier.
#[derive(Debug)]
pub(crate) struct LpTele {
    /// This LP's node counters.
    pub(crate) nc: NodeCounters,
    /// This LP's raw points.
    pub(crate) col: Collect,
    /// Provenance chains (pop times, most recent first) of sampled
    /// packets delivered at this LP — the cross-check that exported
    /// span timelines equal the interned chains.
    pub(crate) chains: Vec<(u64, Vec<f64>)>,
}

impl LpTele {
    pub(crate) fn new(sample_every: u64) -> LpTele {
        LpTele {
            nc: NodeCounters::default(),
            col: Collect::new(sample_every, 1024),
            chains: Vec::new(),
        }
    }
}

/// Per-run network-scope collector, installed on a [`NetworkSim`] by
/// [`NetworkSim::enable_net_telemetry`].
#[derive(Debug)]
pub(crate) struct NetTele {
    /// Per-node counters, indexed by node id.
    pub(crate) nodes: Vec<NodeCounters>,
    /// Raw points (serial: filled directly; parallel: folded from the
    /// per-LP collectors in LP-id order).
    pub(crate) col: Collect,
    /// Engine profile of the parallel run (serial runs leave `None`).
    pub(crate) profile: Option<EngineProfile>,
    /// Sampled delivered packets' provenance chains (parallel runs
    /// only; feeds the span/chain equivalence test).
    pub(crate) sampled_chains: Vec<(u64, Vec<f64>)>,
}

impl NetTele {
    pub(crate) fn new(n_nodes: usize, sample_every: u64) -> NetTele {
        NetTele {
            nodes: vec![NodeCounters::default(); n_nodes],
            col: Collect::new(sample_every, OUTCOMES_PREALLOC),
            profile: None,
            sampled_chains: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn sample_every(&self) -> u64 {
        self.col.sample_every
    }

    #[inline]
    pub(crate) fn transit_outcome(
        &mut self,
        now: f64,
        node: u32,
        pkt: &NetPacket,
        outcome: &HopOutcome,
        node_transit_s: f64,
    ) {
        self.col.transit_outcome(
            &mut self.nodes[node as usize],
            now,
            node,
            pkt,
            outcome,
            node_transit_s,
        );
    }

    #[inline]
    pub(crate) fn forward_outcome(
        &mut self,
        now: f64,
        node: u32,
        out_port: u16,
        pkt: &NetPacket,
        offer: &LinkOffer,
    ) {
        self.col.forward_outcome(
            &mut self.nodes[node as usize],
            now,
            node,
            out_port,
            pkt,
            offer,
        );
    }

    #[inline]
    pub(crate) fn delivered(&mut self, now: f64, node: u32, pkt: &NetPacket) {
        self.col
            .delivered(&mut self.nodes[node as usize], now, node, pkt);
    }

    /// Fold LP `node`'s collector into this run's (called in LP-id
    /// order at the parallel engine's final merge — the fold order is
    /// fixed, and the export sorts canonically anyway, so the merged
    /// bytes cannot depend on the thread count).
    pub(crate) fn fold_lp(&mut self, node: usize, lp: LpTele) {
        self.nodes[node].add(&lp.nc);
        self.col.outcomes.extend(lp.col.outcomes);
        self.col.points.extend(lp.col.points);
        self.sampled_chains.extend(lp.chains);
    }

    /// Build the deterministic snapshot sections and the Perfetto
    /// trace. `scenario` must be the run's time-ordered fault
    /// timeline; actions scheduled past `horizon_s` never fired and
    /// are excluded. `pid_base` offsets the per-router trace tracks
    /// (the engine uses `cell_index * 4096` so cells do not collide);
    /// `arrow_base` salts flow-arrow ids the same way.
    pub(crate) fn export(
        mut self,
        scenario: &[(f64, NetAction)],
        horizon_s: f64,
        pid_base: u32,
        arrow_base: u64,
    ) -> NetTeleReport {
        self.col
            .outcomes
            .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut forensics = derive_forensics(scenario, horizon_s, &self.col.outcomes);
        apply_action_counters(&mut self.nodes, scenario, horizon_s);
        forensics.sort_unstable_by(ForensicEntry::cmp_canonical);
        let mut spans = std::mem::take(&mut self.col.points);
        spans.sort_unstable_by(FlowSpan::cmp_canonical);
        let trace = build_trace(&spans, pid_base, arrow_base);
        let snapshot = NetScopeSnapshot {
            cells_merged: 1,
            drop_causes: NetDropCause::ALL.iter().map(|c| c.name()).collect(),
            nodes: self.nodes,
            forensics,
            spans,
            frozen: dra_telemetry::snapshot().and_then(|s| s.anomaly),
            profile: self.profile,
        };
        NetTeleReport { snapshot, trace }
    }
}

/// One run's exported observability: the mergeable snapshot plus the
/// Perfetto trace events (one track per router, flow arrows between).
#[derive(Debug)]
pub struct NetTeleReport {
    /// Deterministic sections + optional engine profile.
    pub snapshot: NetScopeSnapshot,
    /// Chrome `trace_event` records, canonical order — serialize with
    /// [`dra_telemetry::chrome_trace_json`].
    pub trace: Vec<TraceEvent>,
}

/// Human-readable label of one scripted action.
fn action_label(action: &NetAction) -> String {
    match *action {
        NetAction::FailComponent { node, lc, kind } => {
            let unit = match kind {
                ComponentKind::Piu => "piu",
                ComponentKind::Pdlu => "pdlu",
                ComponentKind::Sru => "sru",
                ComponentKind::Lfe => "lfe",
                ComponentKind::BusController => "bus-controller",
            };
            format!("fail-{unit} node{node}/lc{lc}")
        }
        NetAction::RepairLc { node, lc } => format!("repair-lc node{node}/lc{lc}"),
        NetAction::FailEib { node } => format!("fail-eib node{node}"),
        NetAction::RepairEib { node } => format!("repair-eib node{node}"),
        NetAction::FailLink { a, b } => format!("fail-link {a}-{b}"),
        NetAction::RepairLink { a, b } => format!("repair-link {a}-{b}"),
    }
}

/// Credit scripted actions to the routers they touch (cables touch
/// both endpoints). Derived from the scenario, not runtime hooks.
fn apply_action_counters(
    nodes: &mut [NodeCounters],
    scenario: &[(f64, NetAction)],
    horizon_s: f64,
) {
    for (at, action) in scenario {
        if *at > horizon_s {
            continue;
        }
        match *action {
            NetAction::FailComponent { node, .. }
            | NetAction::RepairLc { node, .. }
            | NetAction::FailEib { node }
            | NetAction::RepairEib { node } => nodes[node as usize].actions += 1,
            NetAction::FailLink { a, b } | NetAction::RepairLink { a, b } => {
                nodes[a as usize].actions += 1;
                nodes[b as usize].actions += 1;
            }
        }
    }
}

/// Derive the forensics ledger from the scenario and the sorted
/// outcome list: one `Action` entry per fired action (with the
/// cumulative drop census at that instant) and `FlowDown`/`FlowUp`
/// entries at every per-flow availability transition.
fn derive_forensics(
    scenario: &[(f64, NetAction)],
    horizon_s: f64,
    sorted_outcomes: &[Outcome],
) -> Vec<ForensicEntry> {
    let mut out = Vec::new();
    // Scenario is time-ordered, outcomes are sorted: one cumulative
    // census cursor serves every action.
    let mut census = [0u64; NET_DROP_CAUSES];
    let mut cursor = 0usize;
    for (at, action) in scenario {
        if *at > horizon_s {
            continue;
        }
        while cursor < sorted_outcomes.len() && sorted_outcomes[cursor].0 <= *at {
            let code = sorted_outcomes[cursor].3;
            if code > 0 {
                census[(code - 1) as usize] += 1;
            }
            cursor += 1;
        }
        out.push(ForensicEntry {
            t: *at,
            kind: ForensicKind::Action,
            flow: u32::MAX,
            cause: u32::MAX,
            label: action_label(action),
            drops_at: census,
        });
    }
    // Per-flow availability state machine: flows start up; the first
    // drop while up emits FlowDown, the first delivery while down
    // emits FlowUp.
    let n_flows = sorted_outcomes
        .iter()
        .map(|o| o.2 as usize + 1)
        .max()
        .unwrap_or(0);
    let mut up = vec![true; n_flows];
    for &(t, _pkt, flow, code) in sorted_outcomes {
        let f = flow as usize;
        if code == 0 {
            if !up[f] {
                up[f] = true;
                out.push(ForensicEntry {
                    t,
                    kind: ForensicKind::FlowUp,
                    flow,
                    cause: u32::MAX,
                    label: String::new(),
                    drops_at: [0; NET_DROP_CAUSES],
                });
            }
        } else if up[f] {
            up[f] = false;
            out.push(ForensicEntry {
                t,
                kind: ForensicKind::FlowDown,
                flow,
                cause: (code - 1) as u32,
                label: String::new(),
                drops_at: [0; NET_DROP_CAUSES],
            });
        }
    }
    out
}

/// Perfetto-facing name of a drop span.
fn drop_trace_name(cause_index: u32) -> &'static str {
    match NetDropCause::ALL.get(cause_index as usize) {
        Some(NetDropCause::IngressDown) => "drop:ingress_down",
        Some(NetDropCause::EgressDown) => "drop:egress_down",
        Some(NetDropCause::FabricDown) => "drop:fabric_down",
        Some(NetDropCause::NoRoute) => "drop:no_route",
        Some(NetDropCause::LinkDown) => "drop:link_down",
        Some(NetDropCause::LinkCongested) => "drop:link_congested",
        Some(NetDropCause::CoverageSaturated) => "drop:coverage_saturated",
        Some(NetDropCause::TtlExceeded) => "drop:ttl_exceeded",
        None => "drop",
    }
}

/// Turn canonically sorted spans into Chrome trace events: `'X'`
/// spans on per-router tracks (`pid = pid_base + node`, `tid` =
/// packet), `'i'` markers for deliveries/drops, and `'s'`/`'f'` flow
/// arrows from each link span to the transit it feeds.
fn build_trace(spans: &[FlowSpan], pid_base: u32, arrow_base: u64) -> Vec<TraceEvent> {
    const US: f64 = 1e6;
    let mut trace = Vec::with_capacity(spans.len() * 2);
    let mut i = 0;
    while i < spans.len() {
        let packet = spans[i].packet;
        let mut j = i;
        while j < spans.len() && spans[j].packet == packet {
            j += 1;
        }
        let mut arrow = 0u64;
        for k in i..j {
            let s = &spans[k];
            let (ph, name, dur_us) = match s.kind {
                SpanKind::Transit => ('X', "transit", (s.t1 - s.t0) * US),
                SpanKind::Link => ('X', "link", (s.t1 - s.t0) * US),
                SpanKind::Deliver => ('i', "deliver", 0.0),
                SpanKind::Drop => ('i', drop_trace_name(s.aux), 0.0),
            };
            trace.push(TraceEvent {
                name,
                ph,
                ts_us: s.t0 * US,
                dur_us,
                pid: pid_base + s.node,
                tid: s.packet as u32,
                packet: s.packet,
                id: 0,
            });
            if s.kind == SpanKind::Link && k + 1 < j {
                // Arrow from inside the link span to the start of the
                // packet's next span (the transit at the peer).
                let n = &spans[k + 1];
                let id = arrow_base | (packet << 6) | arrow;
                arrow += 1;
                trace.push(TraceEvent {
                    name: "hop",
                    ph: 's',
                    ts_us: s.t0 * US,
                    dur_us: 0.0,
                    pid: pid_base + s.node,
                    tid: s.packet as u32,
                    packet,
                    id,
                });
                trace.push(TraceEvent {
                    name: "hop",
                    ph: 'f',
                    ts_us: n.t0 * US,
                    dur_us: 0.0,
                    pid: pid_base + n.node,
                    tid: n.packet as u32,
                    packet,
                    id,
                });
            }
        }
        i = j;
    }
    trace
}

impl NetworkSim {
    /// Install the network-scope telemetry collector on this run.
    ///
    /// `sample_every` is the 1-in-N lifecycle sampling modulus for
    /// hop-resolved flow spans (0 records no spans; counters, the
    /// forensics ledger, and — on parallel runs — the engine profile
    /// are collected regardless). Collection observes the simulation
    /// and never steers it: results stay byte-identical with the
    /// collector on or off, at any `sim_threads`.
    pub fn enable_net_telemetry(&mut self, sample_every: u64) {
        self.tele = Some(Box::new(NetTele::new(self.topo.n_nodes(), sample_every)));
    }

    /// Export and remove the collector installed by
    /// [`enable_net_telemetry`](NetworkSim::enable_net_telemetry);
    /// `None` when no collector is installed. Call on the finished
    /// simulation returned by [`run`](NetworkSim::run).
    ///
    /// `horizon_s` bounds which scripted actions are reported (those
    /// scheduled later never fired). `pid_base`/`arrow_base` offset
    /// Perfetto track ids and flow-arrow ids so traces from multiple
    /// cells/replications can be concatenated without collisions.
    pub fn export_net_telemetry(
        &mut self,
        horizon_s: f64,
        pid_base: u32,
        arrow_base: u64,
    ) -> Option<NetTeleReport> {
        let tele = self.tele.take()?;
        Some(tele.export(&self.scenario, horizon_s, pid_base, arrow_base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Flow, NetConfig, NetScenario, NetworkSim};
    use crate::topology::{Topology, TopologyKind};
    use dra_core::handle::ArchKind;

    fn mesh_net(sim_threads: usize) -> NetworkSim {
        let topo = Topology::build(TopologyKind::Mesh2D { rows: 3, cols: 3 });
        let cfg = NetConfig {
            traffic_stop_s: 6e-3,
            sim_threads,
            ..NetConfig::default()
        };
        let flows = vec![
            Flow {
                src: 0,
                dst: 8,
                rate_pps: 30_000.0,
            },
            Flow {
                src: 6,
                dst: 2,
                rate_pps: 30_000.0,
            },
        ];
        let mut net = NetworkSim::new(topo, ArchKind::Dra, cfg, flows, 0xBEEF);
        net.set_scenario(&NetScenario::new().at(2e-3, NetAction::FailLink { a: 0, b: 1 }));
        net
    }

    const HORIZON: f64 = 8e-3;

    #[test]
    fn serial_export_agrees_with_stats() {
        let mut net = mesh_net(1);
        net.enable_net_telemetry(1); // sample every packet
        let mut done = net.run(7, HORIZON);
        let stats = done.stats.clone();
        let report = done.export_net_telemetry(HORIZON, 0, 0).expect("collector");
        let snap = &report.snapshot;
        let delivered: u64 = snap.nodes.iter().map(|n| n.delivered).sum();
        assert_eq!(delivered, stats.delivered);
        for (i, _) in NetDropCause::ALL.iter().enumerate() {
            let by_node: u64 = snap.nodes.iter().map(|n| n.drops[i]).sum();
            assert_eq!(by_node, stats.drops[i], "cause {i}");
        }
        // Every termination produced exactly one outcome-derived fact:
        // forensics has the scripted action, and the census on it only
        // counts drops before the cut.
        let action = snap
            .forensics
            .iter()
            .find(|e| e.kind == ForensicKind::Action)
            .expect("action entry");
        assert_eq!(action.label, "fail-link 0-1");
        assert!(action.drops_at.iter().sum::<u64>() <= stats.dropped_total());
        // The cut severs flow 0's only shortest path segment 0->1
        // until rerouting is impossible (static FIBs): flow 0 goes
        // down and never comes back up, so a FlowDown entry exists.
        assert!(snap
            .forensics
            .iter()
            .any(|e| e.kind == ForensicKind::FlowDown));
        // Sampling every packet: spans cover every delivered packet.
        assert!(snap.spans.iter().any(|s| s.kind == SpanKind::Deliver));
        // Link-cut drops appear on the cable endpoints' trace names.
        let json = dra_telemetry::chrome_trace_json(&report.trace);
        assert!(json.contains("\"name\":\"transit\""));
        assert!(json.contains("\"ph\":\"s\"") && json.contains("\"ph\":\"f\""));
        // Actions are credited to both cable endpoints.
        assert_eq!(snap.nodes[0].actions, 1);
        assert_eq!(snap.nodes[1].actions, 1);
    }

    #[test]
    fn parallel_spans_match_provenance_chains() {
        let mut net = mesh_net(2);
        net.enable_net_telemetry(1);
        let mut done = net.run(7, HORIZON);
        let tele = done.tele.as_ref().expect("collector survives the run");
        assert!(
            !tele.sampled_chains.is_empty(),
            "parallel run recorded no sampled chains"
        );
        for (pkt, chain) in &tele.sampled_chains {
            // The packet's transit/link span starts, oldest first,
            // must equal the interned provenance chain reversed (the
            // chain stores pop times most recent first and excludes
            // the Deliver pop).
            let mut starts: Vec<f64> = tele
                .col
                .points
                .iter()
                .filter(|s| {
                    s.packet == *pkt && matches!(s.kind, SpanKind::Transit | SpanKind::Link)
                })
                .map(|s| s.t0)
                .collect();
            starts.sort_unstable_by(f64::total_cmp);
            let mut from_chain = chain.clone();
            from_chain.reverse();
            assert_eq!(
                starts, from_chain,
                "packet {pkt:#x}: span starts disagree with provenance chain"
            );
        }
        // Engine profile came back from the windowed engine.
        let report = done.export_net_telemetry(HORIZON, 0, 0).expect("collector");
        let profile = report.snapshot.profile.expect("parallel profile");
        assert_eq!(profile.runs, 1);
        assert_eq!(profile.lp_events.len(), 9);
        assert!(profile.events_total() > 0);
        assert!(profile.lookahead_min_s > 0.0);
    }

    #[test]
    fn forensics_flow_transitions_pair_up() {
        // Down then up again: cut a cable, then repair it.
        let topo = Topology::build(TopologyKind::Mesh2D { rows: 2, cols: 2 });
        let cfg = NetConfig {
            traffic_stop_s: 9e-3,
            ..NetConfig::default()
        };
        let flows = vec![Flow {
            src: 0,
            dst: 1,
            rate_pps: 50_000.0,
        }];
        let mut net = NetworkSim::new(topo, ArchKind::Dra, cfg, flows, 0x5EED);
        net.set_scenario(
            &NetScenario::new()
                .at(2e-3, NetAction::FailLink { a: 0, b: 1 })
                .at(3e-3, NetAction::FailLink { a: 0, b: 2 })
                .at(5e-3, NetAction::RepairLink { a: 0, b: 1 }),
        );
        net.enable_net_telemetry(0); // counters + forensics only
        let mut done = net.run(3, 10e-3);
        let report = done.export_net_telemetry(10e-3, 0, 0).expect("collector");
        let snap = report.snapshot;
        let downs = snap
            .forensics
            .iter()
            .filter(|e| e.kind == ForensicKind::FlowDown)
            .count();
        let ups = snap
            .forensics
            .iter()
            .filter(|e| e.kind == ForensicKind::FlowUp)
            .count();
        assert!(downs >= 1, "isolating node 0 must take flow 0 down");
        assert!(ups >= 1, "repairing 0-1 must bring flow 0 back up");
        // Transitions alternate by construction; sampling off means no
        // spans were collected.
        assert!(snap.spans.is_empty());
        assert_eq!(snap.cells_merged, 1);
    }
}
