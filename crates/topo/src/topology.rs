//! Topology generation: fat-tree(k), 2-D mesh, Barabási–Albert.
//!
//! A [`Topology`] is an undirected connected graph of router nodes.
//! Each node's links are numbered by **port**: port `p` of node `n`
//! leads to `adj[n][p]` (neighbors sorted ascending, so port numbering
//! is a pure function of the graph). Every node additionally owns one
//! **host port** — index `degree(n)` — where end-to-end flows enter
//! and leave; in the router model each port maps 1:1 onto a linecard.
//!
//! All three generators are deterministic: fat-tree and mesh are
//! closed-form, and Barabási–Albert draws its attachments from a
//! SplitMix64 stream seeded by a value carried *in the spec*, so the
//! same spec always yields the same graph.

use dra_campaign::seed::splitmix64;

/// Which topology to build, with its parameters.
///
/// The variants carry everything needed to regenerate the graph, so a
/// `TopologyKind` in a spec manifest pins the topology byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyKind {
    /// k-ary fat-tree (k even, ≥ 2): k²/4 core, k·k/2 aggregation and
    /// k·k/2 edge switches; flows attach at edge switches only.
    FatTree {
        /// Arity (ports per switch in the classic construction).
        k: u32,
    },
    /// rows × cols 2-D mesh (no wraparound); flows attach everywhere.
    Mesh2D {
        /// Grid rows.
        rows: u32,
        /// Grid columns.
        cols: u32,
    },
    /// Barabási–Albert preferential attachment: start from a complete
    /// graph on `m + 1` nodes, then attach each new node to `m`
    /// distinct existing nodes with probability proportional to
    /// degree. Flows attach everywhere.
    BarabasiAlbert {
        /// Final node count.
        n: u32,
        /// Edges added per new node (≥ 2 so every node has degree ≥ 2).
        m: u32,
        /// Seed of the SplitMix64 attachment stream (part of the spec).
        seed: u64,
    },
}

impl TopologyKind {
    /// Short stable label for artifacts and cell ids.
    pub fn label(&self) -> String {
        match self {
            TopologyKind::FatTree { k } => format!("fat-tree-k{k}"),
            TopologyKind::Mesh2D { rows, cols } => format!("mesh-{rows}x{cols}"),
            TopologyKind::BarabasiAlbert { n, m, .. } => format!("ba-n{n}-m{m}"),
        }
    }
}

/// A generated topology: sorted adjacency plus derived port tables.
#[derive(Debug, Clone)]
pub struct Topology {
    /// The generating parameters.
    pub kind: TopologyKind,
    /// `adj[n]` = neighbor ids of node `n`, sorted ascending; the
    /// index within the vector is the port number.
    pub adj: Vec<Vec<u32>>,
    /// `rev_port[n][p]` = the port on neighbor `adj[n][p]` that leads
    /// back to `n` (needed to tag the ingress linecard on arrival).
    pub rev_port: Vec<Vec<u16>>,
    /// Nodes where flows may source/sink (edge switches in a fat-tree;
    /// every node otherwise).
    pub hosts: Vec<u32>,
}

impl Topology {
    /// Generate the topology for `kind`.
    ///
    /// # Panics
    /// Panics on degenerate parameters (odd/too-small fat-tree k,
    /// single-node meshes, BA with `m < 2` or `n ≤ m`).
    pub fn build(kind: TopologyKind) -> Topology {
        let (edges, n, hosts) = match kind {
            TopologyKind::FatTree { k } => fat_tree_edges(k),
            TopologyKind::Mesh2D { rows, cols } => mesh_edges(rows, cols),
            TopologyKind::BarabasiAlbert { n, m, seed } => ba_edges(n, m, seed),
        };
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
        for &(a, b) in &edges {
            assert!(a != b && a < n && b < n, "bad edge ({a},{b}) of {n}");
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        for nb in &mut adj {
            nb.sort_unstable();
            let before = nb.len();
            nb.dedup();
            assert_eq!(before, nb.len(), "parallel edges");
        }
        let rev_port = adj
            .iter()
            .enumerate()
            .map(|(node, nb)| {
                nb.iter()
                    .map(|&peer| {
                        adj[peer as usize]
                            .binary_search(&(node as u32))
                            .expect("undirected edge") as u16
                    })
                    .collect()
            })
            .collect();
        let topo = Topology {
            kind,
            adj,
            rev_port,
            hosts,
        };
        assert!(topo.is_connected(), "generated topology not connected");
        topo
    }

    /// Number of router nodes.
    pub fn n_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected links.
    pub fn n_links(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Link degree of `node` (host port excluded).
    pub fn degree(&self, node: u32) -> usize {
        self.adj[node as usize].len()
    }

    /// The port (= linecard) where flows enter/leave `node`.
    pub fn host_port(&self, node: u32) -> u16 {
        self.degree(node) as u16
    }

    /// Linecards a router at `node` needs: one per link, one for the
    /// host side, and at least 3 (the DRA coverage model's minimum).
    pub fn n_lcs(&self, node: u32) -> usize {
        (self.degree(node) + 1).max(3)
    }

    fn is_connected(&self) -> bool {
        let n = self.n_nodes();
        if n == 0 {
            return false;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in &self.adj[v as usize] {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }
}

/// Classic k-ary fat-tree at switch granularity. Node numbering:
/// cores `0..k²/4`, then per pod `p` the k/2 aggregation switches,
/// then the k/2 edge switches, pods in order.
fn fat_tree_edges(k: u32) -> (Vec<(u32, u32)>, u32, Vec<u32>) {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree k must be even and >= 2"
    );
    let half = k / 2;
    let n_core = half * half;
    let agg0 = n_core;
    let n = n_core + k * half * 2;
    let agg = |pod: u32, a: u32| agg0 + pod * k + a;
    let edge = |pod: u32, e: u32| agg0 + pod * k + half + e;
    let mut edges = Vec::new();
    let mut hosts = Vec::new();
    for pod in 0..k {
        for a in 0..half {
            // Aggregation switch `a` uplinks to core group `a`.
            for y in 0..half {
                edges.push((a * half + y, agg(pod, a)));
            }
            // Full bipartite agg ↔ edge inside the pod.
            for e in 0..half {
                edges.push((agg(pod, a), edge(pod, e)));
            }
        }
        for e in 0..half {
            hosts.push(edge(pod, e));
        }
    }
    (edges, n, hosts)
}

/// rows × cols grid, 4-neighborhood, no wraparound.
fn mesh_edges(rows: u32, cols: u32) -> (Vec<(u32, u32)>, u32, Vec<u32>) {
    assert!(rows >= 2 && cols >= 2, "mesh needs rows, cols >= 2");
    let id = |r: u32, c: u32| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    let n = rows * cols;
    (edges, n, (0..n).collect())
}

/// Barabási–Albert via the repeated-endpoint trick: sampling a
/// uniform entry of the flat endpoint list is sampling a node with
/// probability proportional to its degree.
fn ba_edges(n: u32, m: u32, seed: u64) -> (Vec<(u32, u32)>, u32, Vec<u32>) {
    assert!(m >= 2, "BA needs m >= 2 so every node has degree >= 2");
    assert!(n > m, "BA needs n > m");
    let mut state = seed;
    let mut edges = Vec::new();
    let mut endpoints: Vec<u32> = Vec::new();
    // Seed clique on m + 1 nodes.
    for a in 0..=m {
        for b in (a + 1)..=m {
            edges.push((a, b));
            endpoints.push(a);
            endpoints.push(b);
        }
    }
    for v in (m + 1)..n {
        let mut targets: Vec<u32> = Vec::new();
        while (targets.len() as u32) < m {
            let pick = endpoints[(splitmix64(&mut state) % endpoints.len() as u64) as usize];
            if !targets.contains(&pick) {
                targets.push(pick);
            }
        }
        for t in targets {
            edges.push((t, v));
            endpoints.push(t);
            endpoints.push(v);
        }
    }
    (edges, n, (0..n).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_4_shape() {
        let t = Topology::build(TopologyKind::FatTree { k: 4 });
        assert_eq!(t.n_nodes(), 20, "4 core + 8 agg + 8 edge");
        assert_eq!(t.n_links(), 32, "16 core-agg + 16 agg-edge");
        assert_eq!(t.hosts.len(), 8, "edge switches only");
        for core in 0..4u32 {
            assert_eq!(t.degree(core), 4, "core fans to every pod");
        }
        for &h in &t.hosts {
            assert_eq!(t.degree(h), 2, "edge uplinks = k/2");
            assert_eq!(t.n_lcs(h), 3);
        }
    }

    #[test]
    fn mesh_shape_and_ports() {
        let t = Topology::build(TopologyKind::Mesh2D { rows: 4, cols: 4 });
        assert_eq!(t.n_nodes(), 16);
        assert_eq!(t.n_links(), 24);
        assert_eq!(t.degree(0), 2, "corner");
        assert_eq!(t.degree(5), 4, "interior");
        assert_eq!(t.hosts.len(), 16);
        // rev_port round-trips.
        for n in 0..16u32 {
            for (p, &peer) in t.adj[n as usize].iter().enumerate() {
                let back = t.rev_port[n as usize][p] as usize;
                assert_eq!(t.adj[peer as usize][back], n);
            }
        }
    }

    #[test]
    fn ba_is_deterministic_and_min_degree() {
        let kind = TopologyKind::BarabasiAlbert {
            n: 64,
            m: 2,
            seed: 7,
        };
        let a = Topology::build(kind);
        let b = Topology::build(kind);
        assert_eq!(a.adj, b.adj, "same seed, same graph");
        assert_eq!(a.n_nodes(), 64);
        assert_eq!(a.n_links(), 3 + 61 * 2, "clique(3) + 2 per newcomer");
        for v in 0..64u32 {
            assert!(a.degree(v) >= 2);
        }
        let c = Topology::build(TopologyKind::BarabasiAlbert {
            n: 64,
            m: 2,
            seed: 8,
        });
        assert_ne!(a.adj, c.adj, "different seed, different graph");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TopologyKind::FatTree { k: 4 }.label(), "fat-tree-k4");
        assert_eq!(
            TopologyKind::Mesh2D { rows: 4, cols: 4 }.label(),
            "mesh-4x4"
        );
        assert_eq!(
            TopologyKind::BarabasiAlbert {
                n: 64,
                m: 2,
                seed: 7
            }
            .label(),
            "ba-n64-m2"
        );
    }
}
