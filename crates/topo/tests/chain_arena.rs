//! Property tests for the interned provenance arena: arena ordering
//! is bit-identical to the retained `Vec<f64>` reference comparator
//! over random chain *forests* (shared prefixes, exact-tie times,
//! independent bottoms), and epoch recycling never aliases a live
//! chain.

use dra_topo::chain::{chain_cmp_recent_first, chain_cmp_ref, ChainArena, NIL};
use proptest::prelude::*;

/// A random forest: node `i` picks a parent among nodes `0..i` (or
/// none), with pop times drawn from a deliberately tiny pool so exact
/// `f64` ties and shared-prefix collisions are the common case, not
/// the exception.
#[derive(Debug, Clone)]
struct Forest {
    /// `(time_index, parent)`; parent = `usize::MAX` for a root.
    nodes: Vec<(usize, usize)>,
}

const TIME_POOL: [f64; 6] = [0.0, -0.0, 1.0, 1.5, 2.0, 3.0];

fn forest() -> impl Strategy<Value = Forest> {
    proptest::collection::vec((0usize..TIME_POOL.len(), 0usize..=64), 1..160).prop_map(|raw| {
        Forest {
            nodes: raw
                .into_iter()
                .enumerate()
                .map(|(i, (t, p))| {
                    // A root with probability ~1/3, else some earlier node:
                    // deep chains with heavily shared prefixes.
                    if i == 0 || p % 3 == 0 {
                        (t, usize::MAX)
                    } else {
                        (t, p % i)
                    }
                })
                .collect(),
        }
    })
}

/// Materialize every node's chain oldest-first (the retained
/// reference representation) and intern the same forest in an arena.
fn build(f: &Forest) -> (ChainArena, Vec<u32>, Vec<Vec<f64>>) {
    let mut arena = ChainArena::new();
    let mut handles = Vec::with_capacity(f.nodes.len());
    let mut vecs: Vec<Vec<f64>> = Vec::with_capacity(f.nodes.len());
    for &(t, p) in &f.nodes {
        let time = TIME_POOL[t];
        let (parent_h, mut chain) = if p == usize::MAX {
            (NIL, Vec::new())
        } else {
            (handles[p], vecs[p].clone())
        };
        handles.push(arena.extend(parent_h, time));
        chain.push(time);
        vecs.push(chain);
    }
    (arena, handles, vecs)
}

proptest! {
    /// Arena comparison == reference comparison, every pair, both
    /// orientations, plus the serialized (most-recent-first) form.
    #[test]
    fn arena_cmp_matches_vec_reference(f in forest()) {
        let (arena, handles, vecs) = build(&f);
        let mut wires: Vec<Vec<f64>> = Vec::with_capacity(handles.len());
        for &h in &handles {
            let mut w = Vec::new();
            arena.serialize_into(h, &mut w);
            wires.push(w);
        }
        for i in 0..handles.len() {
            // The wire form is the reference chain reversed.
            let mut rev = vecs[i].clone();
            rev.reverse();
            prop_assert_eq!(&wires[i], &rev);
            for j in 0..handles.len() {
                let want = chain_cmp_ref(&vecs[i], &vecs[j]);
                prop_assert_eq!(arena.cmp(handles[i], handles[j]), want);
                prop_assert_eq!(chain_cmp_recent_first(&wires[i], &wires[j]), want);
            }
        }
    }

    /// Re-interning a serialized chain (the cross-LP handoff) compares
    /// Equal against its source and preserves order against everything
    /// else — interning is transparent to the tie-break.
    #[test]
    fn reintern_is_order_transparent(f in forest()) {
        let (mut arena, handles, vecs) = build(&f);
        let mut wire = Vec::new();
        for i in 0..handles.len() {
            wire.clear();
            arena.serialize_into(handles[i], &mut wire);
            let again = arena.intern_recent_first(&wire);
            prop_assert_eq!(arena.cmp(handles[i], again), std::cmp::Ordering::Equal);
            for j in 0..handles.len() {
                prop_assert_eq!(
                    arena.cmp(again, handles[j]),
                    chain_cmp_ref(&vecs[i], &vecs[j])
                );
            }
        }
    }

    /// Epoch recycling never aliases a live chain: relocate a random
    /// subset (the "still-pending events"), drop the rest, then grow
    /// the arena aggressively — every survivor must still serialize to
    /// exactly its pre-compaction value and keep its pairwise order.
    #[test]
    fn recycling_never_aliases_live_chains(f in forest(), keep_mask in proptest::collection::vec(any::<bool>(), 160)) {
        let (mut arena, handles, _vecs) = build(&f);
        let live: Vec<u32> = handles
            .iter()
            .enumerate()
            .filter(|(i, _)| *keep_mask.get(*i).unwrap_or(&true))
            .map(|(_, &h)| h)
            .collect();
        let before: Vec<Vec<f64>> = live
            .iter()
            .map(|&h| {
                let mut w = Vec::new();
                arena.serialize_into(h, &mut w);
                w
            })
            .collect();
        arena.begin_compact();
        let live: Vec<u32> = live.iter().map(|&h| arena.relocate(h)).collect();
        arena.finish_compact();
        prop_assert_eq!(arena.epoch(), 1);
        // New-epoch churn: if recycling reused a live node's slot for
        // fresh data, some survivor's serialization would change.
        for k in 0..512u32 {
            let h = arena.extend(NIL, -1.0 - k as f64);
            arena.extend(h, -0.5);
        }
        for (i, &h) in live.iter().enumerate() {
            let mut after = Vec::new();
            arena.serialize_into(h, &mut after);
            prop_assert_eq!(&after, &before[i], "live chain mutated by recycling");
            for (j, &g) in live.iter().enumerate() {
                prop_assert_eq!(
                    arena.cmp(h, g),
                    chain_cmp_recent_first(&before[i], &before[j])
                );
            }
        }
    }
}
