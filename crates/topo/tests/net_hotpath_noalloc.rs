//! Proof that the network engine's steady-state per-hop event path
//! stays off the heap — in both the serial kernel and the parallel
//! (windowed) engine.
//!
//! The serial measurement is direct: warm a mesh-4x4 up to steady
//! state, then count allocations across a long measurement window.
//! The parallel engine builds and tears down its run inside one call,
//! so it is measured by *run-length difference*: the allocations of a
//! long run minus those of a half-length run are (construction and
//! teardown cancelling) the cost of the extra steady-state simulated
//! time — which must be essentially zero per hop. Provenance-chain
//! interning, cross-LP staging, payload sidecars, and arena recycling
//! all live inside that window.
//!
//! Everything shares one `#[test]`: `#[global_allocator]` is
//! per-binary and the counter is global, so concurrent tests would
//! pollute each other's windows (same pattern as
//! `dra-router/tests/hotpath_noalloc.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dra_core::handle::ArchKind;
use dra_topo::topology::{Topology, TopologyKind};
use dra_topo::{Flow, NetConfig, NetworkSim};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn mesh_net(sim_threads: usize, traffic_stop_s: f64) -> NetworkSim {
    let topo = Topology::build(TopologyKind::Mesh2D { rows: 4, cols: 4 });
    let cfg = NetConfig {
        traffic_stop_s,
        sim_threads,
        ..NetConfig::default()
    };
    let flows = vec![
        Flow {
            src: 0,
            dst: 15,
            rate_pps: 60_000.0,
        },
        Flow {
            src: 12,
            dst: 3,
            rate_pps: 60_000.0,
        },
        Flow {
            src: 5,
            dst: 10,
            rate_pps: 40_000.0,
        },
        Flow {
            src: 2,
            dst: 13,
            rate_pps: 40_000.0,
        },
    ];
    NetworkSim::new(topo, ArchKind::Dra, cfg, flows, 0xA110C)
}

/// Total hop count a finished run observed (delivered packets only —
/// an undercount of hop events, which makes the per-hop bound
/// stricter, not looser).
fn total_hops(net: &NetworkSim) -> f64 {
    net.stats.hops.count() as f64 * net.stats.hops.mean()
}

#[test]
fn steady_state_network_simulation_is_allocation_free() {
    // --- Serial kernel: direct warmup-then-measure. ---
    let mut sim = mesh_net(1, 40e-3).simulation(7);
    sim.run_until(5e-3); // warm the calendar queue and link tables
    let events_before = sim.events_processed();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    sim.run_until(35e-3);
    let serial_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    let serial_events = sim.events_processed() - events_before;
    assert!(
        serial_events > 50_000,
        "serial window too small ({serial_events} events)"
    );
    // Rare residual growth (a Welford table, a calendar bucket first
    // touched in the window) is tolerated; per-event allocation is
    // not. Observed: 0 over ~190k events.
    assert!(
        (serial_allocs as f64) < (serial_events as f64) / 10_000.0,
        "serial hot path allocated {serial_allocs} times over {serial_events} events"
    );

    // --- Parallel engine (sim-threads = 2): run-length difference. ---
    // Construction, precompute, thread spawn, and the final merge are
    // identical between the two runs; the difference isolates the
    // extra steady-state windows. The short run is itself run twice
    // first so the thread-local arrival-precompute pool reaches its
    // high-water capacity before anything is measured.
    let short_horizon = 20e-3;
    let long_horizon = 35e-3;
    let run = |horizon: f64| {
        let net = mesh_net(2, horizon - 5e-3);
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let done = net.run(7, horizon);
        (
            ALLOCATIONS.load(Ordering::Relaxed) - before,
            total_hops(&done),
        )
    };
    run(short_horizon); // pool warmup, unmeasured
    let (short_allocs, short_hops) = run(short_horizon);
    let (long_allocs, long_hops) = run(long_horizon);
    let extra_hops = long_hops - short_hops;
    assert!(
        extra_hops > 10_000.0,
        "parallel window too small ({extra_hops} extra hops)"
    );
    let extra_allocs = long_allocs.saturating_sub(short_allocs);
    // The longer run may legitimately allocate a handful more times —
    // doubling of the per-LP delivery ledgers and chain stores, a
    // larger merge-sort scratch buffer — but nothing proportional to
    // hops. One alloc per ~100 hops would already be a regression;
    // the bound leaves an order of magnitude of headroom below the
    // old clone-per-hop behavior (which costs ≥ 2 allocs per hop).
    assert!(
        (extra_allocs as f64) < extra_hops / 100.0,
        "parallel hot path allocated {extra_allocs} extra times over {extra_hops} extra hops \
         (short run: {short_allocs} allocs / {short_hops} hops)"
    );

    // --- Telemetry compiled + hub armed + collector on, sampling off:
    // the hot path still never allocates. (With the feature compiled
    // but everything disabled, the sections above already measured the
    // one-branch-per-hop configuration.) Counters increment in place,
    // ring events overwrite a preallocated buffer, and outcome points
    // land in storage reserved at enable time; per-packet span
    // collection is the only sampled (and allocating) part, and
    // sampling 0 turns it off.
    #[cfg(feature = "telemetry")]
    {
        dra_telemetry::enable(dra_telemetry::Config {
            sample_every: 0,
            ..dra_telemetry::Config::default()
        });

        // Serial kernel, direct warmup-then-measure.
        let mut net = mesh_net(1, 40e-3);
        net.enable_net_telemetry(0);
        let mut sim = net.simulation(7);
        sim.run_until(5e-3);
        let events_before = sim.events_processed();
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        sim.run_until(35e-3);
        let tele_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
        let tele_events = sim.events_processed() - events_before;
        assert!(
            tele_events > 50_000,
            "telemetry serial window too small ({tele_events} events)"
        );
        assert!(
            (tele_allocs as f64) < (tele_events as f64) / 10_000.0,
            "serial hot path with telemetry enabled allocated {tele_allocs} times \
             over {tele_events} events"
        );

        // Parallel engine (profiled run included), run-length diff.
        let run_tele = |horizon: f64| {
            let mut net = mesh_net(2, horizon - 5e-3);
            net.enable_net_telemetry(0);
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            let done = net.run(7, horizon);
            (
                ALLOCATIONS.load(Ordering::Relaxed) - before,
                total_hops(&done),
            )
        };
        run_tele(short_horizon); // warmup, unmeasured
        let (short_allocs, short_hops) = run_tele(short_horizon);
        let (long_allocs, long_hops) = run_tele(long_horizon);
        let extra_hops = long_hops - short_hops;
        assert!(
            extra_hops > 10_000.0,
            "telemetry parallel window too small ({extra_hops} extra hops)"
        );
        let extra_allocs = long_allocs.saturating_sub(short_allocs);
        assert!(
            (extra_allocs as f64) < extra_hops / 100.0,
            "parallel hot path with telemetry enabled allocated {extra_allocs} extra times \
             over {extra_hops} extra hops \
             (short run: {short_allocs} allocs / {short_hops} hops)"
        );
        dra_telemetry::disable();
    }
}
