//! Network-scope telemetry contracts (feature `telemetry`).
//!
//! * The snapshot's `deterministic` section and the whole flow trace
//!   are byte-identical at `--sim-threads` 1 vs 2 vs 4 — the same
//!   invariance the artifact itself carries, extended to the
//!   observability outputs.
//! * `NetScopeSnapshot::merge` is commutative and associative, so the
//!   fold over per-LP / per-cell partials is partition- and
//!   order-invariant (proptest).
#![cfg(feature = "telemetry")]

use dra_campaign::json::{parse, Json};
use dra_core::handle::ArchKind;
use dra_telemetry::{
    EngineProfile, FlowSpan, ForensicEntry, ForensicKind, NetScopeSnapshot, NodeCounters, SpanKind,
    NET_DROP_CAUSES,
};
use dra_topo::engine::{self, TopoRunOptions};
use dra_topo::spec::{FlowSpec, TopoCellSpec, TopoFaultSpec, TopoSpec};
use dra_topo::stats::NetDropCause;
use dra_topo::topology::TopologyKind;
use proptest::prelude::*;
use std::path::PathBuf;

fn tiny_spec() -> TopoSpec {
    let cell = |id: &str, arch| TopoCellSpec {
        id: id.into(),
        arch,
        topology: TopologyKind::Mesh2D { rows: 3, cols: 3 },
        link: Default::default(),
        flows: FlowSpec {
            n_flows: 4,
            rate_pps: 20_000.0,
            packet_bytes: 700,
        },
        faults: TopoFaultSpec::FailRouters { k: 2, at_s: 2e-3 },
        horizon_s: 8e-3,
        drain_s: 2e-3,
        replications: 2,
        seed_group: 0,
    };
    TopoSpec {
        name: "tele-tiny".into(),
        description: "telemetry invariance test".into(),
        master_seed: 0x7E1E,
        cells: vec![
            cell("bdr/mesh/r2", ArchKind::Bdr),
            cell("dra/mesh/r2", ArchKind::Dra),
        ],
    }
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dra_net_tele_{}_{tag}.json", std::process::id()))
}

/// The snapshot text split at its non-deterministic `profile` section.
fn deterministic_prefix(snapshot_json: &str) -> &str {
    let cut = snapshot_json
        .rfind(",\"profile\":")
        .expect("snapshot has a profile section");
    &snapshot_json[..cut]
}

#[test]
fn deterministic_section_is_sim_thread_invariant() {
    let spec = tiny_spec();
    let run_with = |threads: usize| {
        let snap_path = tmp(&format!("snap_t{threads}"));
        let trace_path = tmp(&format!("trace_t{threads}"));
        let outcome = engine::run(
            &spec,
            &TopoRunOptions {
                workers: Some(1),
                sim_threads: Some(threads),
                quiet: true,
                telemetry_out: Some(snap_path.clone()),
                trace_out: Some(trace_path.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        let snap = std::fs::read_to_string(&snap_path).unwrap();
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        let _ = std::fs::remove_file(&snap_path);
        let _ = std::fs::remove_file(&trace_path);
        (outcome.artifact_text, snap, trace)
    };
    let (art1, snap1, trace1) = run_with(1);
    let (art2, snap2, trace2) = run_with(2);
    let (art4, snap4, trace4) = run_with(4);

    // The artifact stays byte-identical with collection on.
    assert_eq!(art1, art2);
    assert_eq!(art1, art4);
    // The deterministic snapshot section is engine-invariant...
    assert_eq!(deterministic_prefix(&snap1), deterministic_prefix(&snap2));
    assert_eq!(deterministic_prefix(&snap1), deterministic_prefix(&snap4));
    // ...and the flow trace is derived from it alone, so it is too.
    assert_eq!(trace1, trace2);
    assert_eq!(trace1, trace4);

    // Serial runs carry no engine profile; parallel runs must.
    let doc1 = parse(&snap1).unwrap();
    assert!(matches!(doc1.get("profile"), Some(Json::Null)));
    let doc2 = parse(&snap2).unwrap();
    let prof = doc2.get("profile").expect("parallel profile present");
    assert!(prof.get("lp_events").and_then(Json::as_arr).is_some());
    assert!(prof.get("barrier_wait_ns").and_then(Json::as_u64).is_some());

    // Snapshot shape: format tag, per-node counters, forensics with
    // the scripted SRU kills, sampled spans.
    assert_eq!(
        doc1.get("format").and_then(Json::as_str),
        Some("dra-topo-telemetry/v1")
    );
    let det = doc1.get("deterministic").unwrap();
    assert_eq!(det.get("n_nodes").and_then(Json::as_u64), Some(9));
    assert_eq!(
        det.get("drop_causes")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(8)
    );
    let forensics = det.get("forensics").and_then(Json::as_arr).unwrap();
    assert!(
        forensics.iter().any(|e| e
            .get("label")
            .and_then(Json::as_str)
            .is_some_and(|l| l.contains("fail-sru"))),
        "forensics ledger records the scripted SRU kills"
    );
    // Trace doc parses and holds Perfetto-style events.
    let tdoc = parse(&trace1).unwrap();
    assert!(
        !tdoc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty(),
        "sampled packets produce trace events"
    );
}

#[test]
fn telemetry_out_without_feature_is_not_reachable_here() {
    // Compiled only with the feature: the engine accepts the request.
    // The feature-off Unsupported error is covered by the CLI (a
    // feature-off binary refuses before simulating); here we pin that
    // a collection run with no outputs behaves exactly as before.
    let spec = tiny_spec();
    let plain = engine::run(
        &spec,
        &TopoRunOptions {
            workers: Some(1),
            quiet: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(plain.failed, 0);
}

// ---- merge algebra -------------------------------------------------

fn causes() -> Vec<&'static str> {
    NetDropCause::ALL.iter().map(|c| c.name()).collect()
}

fn time() -> impl Strategy<Value = f64> {
    (0u64..2_000).prop_map(|t| t as f64 * 1e-6)
}

fn node_counters() -> impl Strategy<Value = NodeCounters> {
    (
        0u64..500,
        0u64..100,
        0u64..500,
        0u64..500,
        0u64..8,
        proptest::array::uniform8(0u64..50),
    )
        .prop_map(
            |(transits, covered, forwards, delivered, actions, drops)| NodeCounters {
                transits,
                covered,
                forwards,
                delivered,
                actions,
                drops,
            },
        )
}

fn span() -> impl Strategy<Value = FlowSpan> {
    (
        0u64..64,
        0u32..4,
        0u32..9,
        time(),
        0u64..30,
        0u8..4,
        0u32..16,
    )
        .prop_map(|(packet, flow, node, t0, dur, kind, aux)| FlowSpan {
            packet,
            flow,
            node,
            t0,
            t1: t0 + dur as f64 * 1e-6,
            kind: match kind {
                0 => SpanKind::Transit,
                1 => SpanKind::Link,
                2 => SpanKind::Deliver,
                _ => SpanKind::Drop,
            },
            aux,
        })
}

fn forensic() -> impl Strategy<Value = ForensicEntry> {
    (
        time(),
        0u8..3,
        0u32..4,
        0u32..8,
        proptest::array::uniform8(0u64..50),
    )
        .prop_map(|(t, kind, flow, cause, drops_at)| {
            let kind = match kind {
                0 => ForensicKind::Action,
                1 => ForensicKind::FlowDown,
                _ => ForensicKind::FlowUp,
            };
            ForensicEntry {
                t,
                flow: if kind == ForensicKind::Action {
                    u32::MAX
                } else {
                    flow
                },
                cause: if kind == ForensicKind::FlowDown {
                    cause
                } else {
                    u32::MAX
                },
                label: if kind == ForensicKind::Action {
                    format!("fail-link {flow}-{cause}")
                } else {
                    String::new()
                },
                drops_at: if kind == ForensicKind::Action {
                    drops_at
                } else {
                    [0; 8]
                },
                kind,
            }
        })
}

fn profile() -> impl Strategy<Value = Option<EngineProfile>> {
    proptest::option::of(
        (
            1u64..4,
            1u64..4,
            0u64..2_000,
            0u64..500,
            proptest::collection::vec(0u64..300, 0..9),
        )
            .prop_map(|(runs, threads, windows, cross, lp_events)| {
                let lp_busy_windows = lp_events.iter().map(|&e| e.min(7)).collect();
                EngineProfile {
                    runs,
                    threads,
                    windows,
                    cross_messages: cross,
                    wall_ns: windows * 997,
                    barrier_wait_ns: windows * 41,
                    nonempty_windows: windows / 2,
                    window_max_events_sum: windows,
                    lp_events,
                    lp_busy_windows,
                    lookahead_min_s: 1e-5,
                    lookahead_max_s: 2e-5,
                    lookahead_sum_s: 1.5e-5,
                    lookahead_lps: 1,
                }
            }),
    )
}

fn snapshot() -> impl Strategy<Value = NetScopeSnapshot> {
    (
        1u64..3,
        proptest::collection::vec(node_counters(), 0..9),
        proptest::collection::vec(forensic(), 0..12),
        proptest::collection::vec(span(), 0..24),
        profile(),
    )
        .prop_map(|(cells_merged, nodes, forensics, spans, profile)| {
            let mut s = NetScopeSnapshot {
                cells_merged,
                drop_causes: causes(),
                nodes,
                forensics,
                spans,
                frozen: None,
                profile,
            };
            // Producers hand over canonically sorted records; generated
            // snapshots must honor the same precondition.
            s.forensics.sort_unstable_by(ForensicEntry::cmp_canonical);
            s.spans.sort_unstable_by(FlowSpan::cmp_canonical);
            s
        })
}

fn merged(a: &NetScopeSnapshot, b: &NetScopeSnapshot) -> NetScopeSnapshot {
    let mut m = a.clone();
    m.merge(b);
    m
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Merge is a commutative, associative fold: any partition of the
    /// per-LP (or per-cell) partials, merged in any order, serializes
    /// to the same bytes. `NET_DROP_CAUSES` pins the census width the
    /// generated counters rely on.
    #[test]
    fn net_scope_merge_is_commutative_and_associative(
        a in snapshot(),
        b in snapshot(),
        c in snapshot(),
    ) {
        prop_assert_eq!(NET_DROP_CAUSES, 8);
        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        prop_assert_eq!(ab.to_json_string(), ba.to_json_string(), "commutativity");
        let ab_c = merged(&merged(&a, &b), &c);
        let a_bc = merged(&a, &merged(&b, &c));
        prop_assert_eq!(ab_c.to_json_string(), a_bc.to_json_string(), "associativity");
    }
}
