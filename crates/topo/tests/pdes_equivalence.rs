//! The parallel engine's contract: running a network on N threads
//! produces *bit-identical* final state to the serial kernel — same
//! counters, same per-flow tallies, same Welford moments down to the
//! last mantissa bit — for every architecture and fault surface the
//! model has.
//!
//! Each case builds the same cell twice through the engine's own
//! construction path (`build_network`), runs one copy on the serial
//! oracle (`sim_threads = 1`) and one on the conservative parallel
//! engine, and compares every statistic. Thread counts above the node
//! count exercise the executor's clamp.

use dra_core::handle::ArchKind;
use dra_des::stats::Welford;
use dra_topo::link::LinkConfig;
use dra_topo::net::{NetAction, NetScenario, NetworkSim};
use dra_topo::spec::{FlowSpec, TopoCellSpec, TopoFaultSpec};
use dra_topo::stats::{NetDropCause, NetStats};
use dra_topo::topology::{Topology, TopologyKind};
use dra_topo::{build_network, Flow, NetConfig};

fn assert_welford_identical(a: &Welford, b: &Welford, what: &str, ctx: &str) {
    assert_eq!(a.count(), b.count(), "{ctx}: {what} count");
    assert_eq!(
        a.mean().to_bits(),
        b.mean().to_bits(),
        "{ctx}: {what} mean {} vs {}",
        a.mean(),
        b.mean()
    );
    assert_eq!(
        a.variance().to_bits(),
        b.variance().to_bits(),
        "{ctx}: {what} variance"
    );
    assert_eq!(a.min().to_bits(), b.min().to_bits(), "{ctx}: {what} min");
    assert_eq!(a.max().to_bits(), b.max().to_bits(), "{ctx}: {what} max");
}

fn assert_stats_identical(a: &NetStats, b: &NetStats, ctx: &str) {
    assert_eq!(a.injected, b.injected, "{ctx}: injected");
    assert_eq!(a.delivered, b.delivered, "{ctx}: delivered");
    assert_eq!(a.in_flight, b.in_flight, "{ctx}: in_flight");
    assert_eq!(a.drops, b.drops, "{ctx}: drops");
    assert_eq!(a.flow_injected, b.flow_injected, "{ctx}: flow_injected");
    assert_eq!(a.flow_delivered, b.flow_delivered, "{ctx}: flow_delivered");
    assert_welford_identical(&a.latency, &b.latency, "latency", ctx);
    assert_welford_identical(&a.hops, &b.hops, "hops", ctx);
    assert!(a.conserved(), "{ctx}: serial conservation");
    assert!(b.conserved(), "{ctx}: parallel conservation");
}

fn cell(arch: ArchKind, topology: TopologyKind, faults: TopoFaultSpec) -> TopoCellSpec {
    TopoCellSpec {
        id: "equiv".into(),
        arch,
        topology,
        link: LinkConfig::default(),
        flows: FlowSpec {
            n_flows: 8,
            rate_pps: 20_000.0,
            packet_bytes: 700,
        },
        faults,
        horizon_s: 10e-3,
        drain_s: 2.5e-3,
        replications: 1,
        seed_group: 0,
    }
}

fn run_at(c: &TopoCellSpec, threads: usize) -> NetStats {
    let mut net = build_network(c, 0xD8A_70B0, 0);
    net.cfg.sim_threads = threads;
    let done = net.run(42, c.horizon_s);
    done.stats
}

#[test]
fn parallel_matches_serial_across_faults_and_archs() {
    let mesh = TopologyKind::Mesh2D { rows: 4, cols: 4 };
    let fat = TopologyKind::FatTree { k: 4 };
    let faults = [
        TopoFaultSpec::None,
        TopoFaultSpec::FailRouters { k: 2, at_s: 2e-3 },
        TopoFaultSpec::FailLinks { k: 3, at_s: 2e-3 },
        // ~100 compressed fault-hours with hot-swap repair: exercises
        // the routers' private fault timelines under lazy advance.
        TopoFaultSpec::Renewal {
            delay_scale: 1e-4,
            repair_h: 10.0,
        },
    ];
    for topology in [mesh, fat] {
        for arch in [ArchKind::Bdr, ArchKind::Dra] {
            for fault in faults {
                let c = cell(arch, topology, fault);
                let ctx = format!("{:?}/{}/{}", arch, topology.label(), fault.label());
                let serial = run_at(&c, 1);
                assert!(serial.injected > 0, "{ctx}: degenerate case");
                for threads in [2, 4, 64] {
                    let parallel = run_at(&c, threads);
                    assert_stats_identical(&serial, &parallel, &format!("{ctx} x{threads}"));
                }
            }
        }
    }
}

#[test]
fn parallel_matches_serial_through_link_repair() {
    // Cut-then-repair mid-run: the repaired directions must come back
    // with a clean backlog in both engines (the `set_up` contract).
    let run_with = |threads: usize| {
        let topo = Topology::build(TopologyKind::Mesh2D { rows: 3, cols: 3 });
        let cfg = NetConfig {
            traffic_stop_s: 7.5e-3,
            sim_threads: threads,
            ..NetConfig::default()
        };
        let flows = vec![
            Flow {
                src: 0,
                dst: 8,
                rate_pps: 40_000.0,
            },
            Flow {
                src: 6,
                dst: 2,
                rate_pps: 40_000.0,
            },
        ];
        let mut net = NetworkSim::new(topo, ArchKind::Dra, cfg, flows, 0xBEEF);
        let sc = NetScenario::new()
            .at(2e-3, NetAction::FailLink { a: 0, b: 1 })
            .at(2e-3, NetAction::FailLink { a: 0, b: 3 })
            .at(5e-3, NetAction::RepairLink { a: 0, b: 1 });
        net.set_scenario(&sc);
        net.run(7, 10e-3).stats
    };
    let serial = run_with(1);
    assert!(
        serial.drops[NetDropCause::LinkDown.index()] > 0,
        "scenario must exercise the down window"
    );
    assert!(
        serial.delivered > 0,
        "scenario must deliver again after repair"
    );
    for threads in [2, 3, 9] {
        assert_stats_identical(&serial, &run_with(threads), &format!("repair x{threads}"));
    }
}

#[test]
fn parallel_matches_serial_with_heterogeneous_latencies() {
    // Adaptive windows: a mesh with one slow WAN-ish edge and one
    // extra-fast edge. The parallel engine's window width must come
    // from the *minimum* attached latency (the fast edge), and
    // messages over the slow edge arrive many windows early — both
    // paths must still reproduce the serial kernel bit-for-bit.
    let run_with = |threads: usize| {
        let topo = Topology::build(TopologyKind::Mesh2D { rows: 4, cols: 4 });
        let cfg = NetConfig {
            traffic_stop_s: 7.5e-3,
            sim_threads: threads,
            ..NetConfig::default()
        };
        let flows = vec![
            Flow {
                src: 0,
                dst: 15,
                rate_pps: 40_000.0,
            },
            Flow {
                src: 12,
                dst: 3,
                rate_pps: 40_000.0,
            },
            Flow {
                src: 5,
                dst: 10,
                rate_pps: 20_000.0,
            },
        ];
        let mut net = NetworkSim::new(topo, ArchKind::Dra, cfg, flows, 0xFADE);
        // Default is 10 µs everywhere; stretch 5-6 to 80 µs (a slow
        // edge on every 0→15 shortest path family) and shrink 9-10 to
        // 2 µs, which becomes the conservative lookahead.
        net.set_link_latency(5, 6, 80e-6);
        net.set_link_latency(9, 10, 2e-6);
        let sc = NetScenario::new().at(3e-3, NetAction::FailLink { a: 9, b: 10 });
        net.set_scenario(&sc);
        net.run(11, 10e-3).stats
    };
    let serial = run_with(1);
    assert!(serial.delivered > 100, "want traffic across the slow edge");
    for threads in [2, 4, 16, 64] {
        assert_stats_identical(&serial, &run_with(threads), &format!("hetero x{threads}"));
    }
}

#[test]
fn parallel_is_replication_stable_at_scale() {
    // One larger case (64 routers, the bench topology) to catch merge
    // bugs that only appear with real cross-LP traffic volume.
    let c = TopoCellSpec {
        id: "equiv-scale".into(),
        arch: ArchKind::Dra,
        topology: TopologyKind::Mesh2D { rows: 8, cols: 8 },
        link: LinkConfig::default(),
        flows: FlowSpec {
            n_flows: 24,
            rate_pps: 40_000.0,
            packet_bytes: 700,
        },
        faults: TopoFaultSpec::FailRouters { k: 4, at_s: 2e-3 },
        horizon_s: 8e-3,
        drain_s: 2e-3,
        replications: 1,
        seed_group: 3,
    };
    let serial = run_at(&c, 1);
    assert!(serial.injected > 200, "want real traffic volume");
    for threads in [2, 4, 8] {
        assert_stats_identical(&serial, &run_at(&c, threads), &format!("scale x{threads}"));
    }
}
