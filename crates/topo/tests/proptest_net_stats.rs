//! Property: no legal inject/deliver/drop history underflows the
//! conservation ledger.
//!
//! `NetStats::in_flight` is a `u64` decremented on every delivery and
//! drop; an accounting bug that delivered or dropped a packet the
//! ledger never saw injected would wrap it toward 2⁶⁴ and trip the
//! `conserved()` invariant much later, far from the cause. This pins
//! the local property: along any operation sequence where deliveries
//! and drops are backed by prior injections — which the simulators
//! guarantee structurally, since every `Deliver`/`Drop` descends from
//! an injected packet — `in_flight` always equals the running
//! difference and the ledger stays conserved at every step.

use dra_topo::stats::{NetDropCause, NetStats};
use proptest::prelude::*;

/// One ledger operation, drawn over a tiny flow space so sequences
/// actually collide on flows.
#[derive(Debug, Clone, Copy)]
enum Op {
    Inject(u32),
    Deliver(u32),
    Drop(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..4).prop_map(Op::Inject),
        (0u32..4).prop_map(Op::Deliver),
        (0u8..8).prop_map(Op::Drop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        ..ProptestConfig::default()
    })]

    #[test]
    fn legal_histories_never_underflow_in_flight(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let mut s = NetStats::new(4);
        // Track what a correct ledger must read; skip deliver/drop
        // ops that no prior injection backs (the simulator can never
        // emit those — every packet event descends from an inject).
        let mut outstanding: u64 = 0;
        let mut per_flow_out = [0u64; 4];
        for op in ops {
            match op {
                Op::Inject(flow) => {
                    s.inject(flow);
                    outstanding += 1;
                    per_flow_out[flow as usize] += 1;
                }
                Op::Deliver(flow) => {
                    if per_flow_out[flow as usize] == 0 {
                        continue;
                    }
                    s.deliver(flow, 1e-4, 3);
                    outstanding -= 1;
                    per_flow_out[flow as usize] -= 1;
                }
                Op::Drop(cause_idx) => {
                    if outstanding == 0 {
                        continue;
                    }
                    let cause = NetDropCause::ALL[cause_idx as usize];
                    // Charge the drop against whichever flow still has
                    // a packet out (drops are not per-flow in the
                    // ledger, only the total matters).
                    let flow = per_flow_out.iter().position(|&c| c > 0).unwrap();
                    s.drop_packet(cause);
                    outstanding -= 1;
                    per_flow_out[flow] -= 1;
                }
            }
            prop_assert_eq!(s.in_flight, outstanding, "in_flight must track the running difference");
            prop_assert!(s.in_flight <= s.injected, "underflow would exceed injected");
            prop_assert!(s.conserved(), "ledger must stay conserved at every step");
        }
        prop_assert_eq!(s.dropped_total() + s.delivered + s.in_flight, s.injected);
    }
}
