//! Property: per-node SplitMix64 seed streams are pairwise disjoint.
//!
//! The network layer co-simulates up to 512 routers inside one cell,
//! each drawing from `NodeSeedStream::new(base, node)`. If any two
//! streams shared even one value in their usable prefix, two routers
//! could replay each other's arrival/fault randomness and silently
//! correlate. This test pins the disjointness promise made in
//! `crates/topo/src/seeds.rs`: over the first 10 000 draws of every
//! node id in 0..512, no value appears in two different streams.
//!
//! Checked by global dedup (sort of all (value, node) pairs): a
//! cross-stream collision would surface as the same value under two
//! node ids. This is strictly stronger than pairwise disjointness —
//! it also rejects repeats within one stream.

use dra_topo::seeds::NodeSeedStream;
use proptest::prelude::*;

const NODES: u64 = 512;
const DRAWS: usize = 10_000;

/// Collect `DRAWS` values from each of `NODES` streams and assert no
/// value occurs under two distinct node ids.
fn assert_streams_disjoint(base: u64) {
    let mut pairs: Vec<(u64, u16)> = Vec::with_capacity(NODES as usize * DRAWS);
    for node in 0..NODES {
        let stream = NodeSeedStream::new(base, node);
        pairs.extend(stream.take(DRAWS).map(|v| (v, node as u16)));
    }
    pairs.sort_unstable();
    for w in pairs.windows(2) {
        assert_ne!(
            w[0].0, w[1].0,
            "base {base:#x}: value {:#x} drawn by node {} and node {}",
            w[0].0, w[0].1, w[1].1
        );
    }
}

#[test]
fn streams_disjoint_for_released_bases() {
    // The bases the committed sweeps actually use (master seed and the
    // flow-placement tag root), plus the degenerate zero base.
    for base in [0xD8A_70B0, 0xF10D_0000_0000_0001, 0] {
        assert_streams_disjoint(base);
    }
}

proptest! {
    // Each case sorts ~5.1M pairs; keep the count small so the debug
    // build stays in test-suite budget on one core.
    #![proptest_config(ProptestConfig {
        cases: 4,
        ..ProptestConfig::default()
    })]

    #[test]
    fn streams_disjoint_for_arbitrary_bases(base in any::<u64>()) {
        assert_streams_disjoint(base);
    }
}
