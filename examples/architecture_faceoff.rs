//! A day in the life, twice: the same fault timeline replayed on the
//! BDR baseline and on DRA, byte-identical traffic, using the
//! [`dra::core::scenario`] API.
//!
//! ```sh
//! cargo run --release --example architecture_faceoff
//! ```
//!
//! Timeline (compressed into 12 ms of simulated time):
//!  t=1 ms  LC1's forwarding engine dies
//!  t=3 ms  LC3's segmentation unit dies (two concurrent faults)
//!  t=5 ms  LC1 hot-swapped
//!  t=6 ms  a fabric plane fails (absorbed by the spare)
//!  t=8 ms  LC3 hot-swapped
//!  t=9 ms  one of LC4's four ports loses its PIU (uncoverable)

use dra::core::scenario::{Action, Scenario};
use dra::router::bdr::BdrConfig;
use dra::router::components::ComponentKind;
use dra::router::metrics::{DropCause, RouterMetrics};

fn report(name: &str, m: &RouterMetrics) {
    let covered: u64 = m.lcs.iter().map(|l| l.covered_packets).sum();
    println!(
        "{name:>4}: delivered {:6.2}% of offered bytes, {} packets covered via EIB",
        100.0 * m.byte_delivery_ratio(),
        covered
    );
    for cause in DropCause::ALL {
        let d = m.total_drops(cause);
        if d > 0 {
            println!("      drops[{cause}] = {d}");
        }
    }
}

fn main() {
    let base = BdrConfig {
        n_lcs: 6,
        load: 0.25,
        ports_per_lc: 4,
        ..BdrConfig::default()
    };
    let scenario = Scenario::new(12e-3)
        .at(1e-3, Action::FailComponent(1, ComponentKind::Lfe))
        .at(3e-3, Action::FailComponent(3, ComponentKind::Sru))
        .at(5e-3, Action::RepairLc(1))
        .at(6e-3, Action::FailFabricPlane)
        .at(8e-3, Action::RepairLc(3))
        .at(9e-3, Action::FailComponent(4, ComponentKind::Piu));

    println!("Identical 12 ms fault timeline on both architectures\n");
    let (bdr, dra) = scenario.compare(base, 777);
    report("BDR", &bdr);
    report("DRA", &dra);

    let recovered = dra.total_delivered_bytes() - bdr.total_delivered_bytes();
    println!(
        "\nDRA recovered {:.2} MB the baseline lost — everything except the\n\
         dead PIU port (one external link of LC4), which no internal\n\
         redundancy can reconnect.",
        recovered as f64 / 1e6
    );
}
