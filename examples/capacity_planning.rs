//! Operator-facing capacity planning with the Figure-8 model.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```
//!
//! Answers the questions a deployment would ask of DRA:
//! 1. At my utilization, how many simultaneous card failures can the
//!    router absorb at full service?
//! 2. How much EIB bandwidth do I need to provision so the bus is
//!    never the bottleneck?
//! 3. What availability do I get for a given sparing/repair contract?

use dra::core::analysis::availability::dra_availability;
use dra::core::analysis::degradation::{b_faulty_fraction, DegradationParams};
use dra::core::analysis::nines::{annual_downtime_minutes, format_nines};
use dra::core::analysis::reliability::DraParams;

fn main() {
    let n = 8;
    let c_lc = 10e9;

    // ---- 1. Failure headroom at full service -----------------------
    println!("Failure headroom (N={n}, 10G cards): largest X_faulty with 100% service\n");
    println!("{:>6} {:>10}", "load", "headroom");
    for &load in &[0.1, 0.15, 0.3, 0.5, 0.7, 0.9] {
        let p = DegradationParams {
            n,
            c_lc_bps: c_lc,
            load,
            bus_capacity_bps: f64::INFINITY,
        };
        let headroom = (1..n)
            .take_while(|&x| b_faulty_fraction(&p, x) >= 1.0)
            .count();
        println!("{:>5.0}% {:>10}", load * 100.0, headroom);
    }
    println!("\nRule of thumb (from ψ·(N−X) ≥ X·L·c): headroom = ⌊N(1−L)⌋ cards.");

    // ---- 2. EIB provisioning ---------------------------------------
    println!("\nMinimum B_BUS (Gbps) so the bus never binds before spare capacity:");
    println!("{:>6} {:>8} {:>8} {:>8}", "load", "X=1", "X=2", "X=4");
    for &load in &[0.15, 0.3, 0.5, 0.7] {
        let mut row = format!("{:>5.0}%", load * 100.0);
        for &x in &[1usize, 2, 4] {
            // The bus must carry min(spare pool, demand).
            let p = DegradationParams {
                n,
                c_lc_bps: c_lc,
                load,
                bus_capacity_bps: f64::INFINITY,
            };
            let spare = (n - x) as f64 * p.psi();
            let demand = x as f64 * p.required_per_faulty();
            row.push_str(&format!(" {:>7.1}", spare.min(demand) / 1e9));
        }
        println!("{row}");
    }

    // ---- 3. Availability vs sparing contract ------------------------
    println!("\nAvailability vs repair contract (N={n}):");
    println!(
        "{:>14} {:>12} {:>12} {:>18}",
        "repair time", "M=2", "M=4", "downtime (M=4)"
    );
    for &hours in &[1.0, 3.0, 12.0, 24.0] {
        let mu = 1.0 / hours;
        let a2 = dra_availability(&DraParams::new(n, 2), mu);
        let a4 = dra_availability(&DraParams::new(n, 4), mu);
        let dt = annual_downtime_minutes(a4);
        let dt_str = if dt < 1.0 {
            format!("{:.1} s/yr", dt * 60.0)
        } else {
            format!("{dt:.1} min/yr")
        };
        println!(
            "{:>11.0} h  {:>12} {:>12} {:>18}",
            hours,
            format_nines(a2),
            format_nines(a4),
            dt_str
        );
    }
    println!("\nReading: protocol diversity (small M) costs availability only at");
    println!("slow repair; the EIB and the PI-unit pool dominate otherwise.");
}
