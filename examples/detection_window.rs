//! The cost of fault-detection latency — an effect the paper's Markov
//! analysis abstracts away entirely.
//!
//! ```sh
//! cargo run --release --example detection_window
//! ```
//!
//! DRA's coverage depends on every card knowing where the faults are
//! ("all LC's store information about the location of faults …
//! achieved through the exchange of control packets over the EIB",
//! §3.1). Those control packets take time. This example sweeps the
//! dissemination delay and measures how many packets die on stale
//! views after an SRU failure — turning the paper's instantaneous
//! fault table into a provisioning number.

use dra::core::sim::{DraConfig, DraRouter, EibConfig};
use dra::router::bdr::BdrConfig;
use dra::router::components::ComponentKind;
use dra::router::metrics::DropCause;

fn run(gossip_delay_s: f64) -> (u64, u64, f64) {
    let mut sim = DraRouter::simulation(
        DraConfig {
            router: BdrConfig {
                n_lcs: 6,
                load: 0.3,
                ..BdrConfig::default()
            },
            eib: EibConfig {
                gossip_delay_s,
                ..EibConfig::default()
            },
        },
        4242,
    );
    sim.run_until(1e-3);
    let now = sim.now();
    sim.model_mut()
        .fail_component_now(2, ComponentKind::Sru, now);
    sim.run_until(6e-3);
    let m = &sim.model().metrics;
    let window_drops: u64 = m
        .lcs
        .iter()
        .map(|l| l.drops(DropCause::EgressDown) + l.drops(DropCause::ReassemblyTimeout))
        .sum();
    let covered: u64 = m.lcs.iter().map(|l| l.covered_packets).sum();
    (window_drops, covered, m.byte_delivery_ratio())
}

fn main() {
    println!("Fault-dissemination delay vs packet loss");
    println!("(6 cards, 30% load, LC2's SRU fails at t = 1 ms, run to 6 ms)\n");
    println!(
        "{:>14} {:>14} {:>12} {:>12}",
        "gossip delay", "window drops", "covered", "delivery"
    );
    for &delay in &[0.0, 50e-6, 200e-6, 500e-6, 1e-3, 2e-3] {
        let (drops, covered, ratio) = run(delay);
        println!(
            "{:>11.0} us {:>14} {:>12} {:>11.2}%",
            delay * 1e6,
            drops,
            covered,
            ratio * 100.0
        );
    }
    println!("\nReading: losses scale linearly with the detection window (the");
    println!("failed card's peers keep switching cells to a dead SRU until the");
    println!("fault table converges). At 30% load each millisecond of delay");
    println!("costs roughly a millisecond of one card's egress traffic — the");
    println!("EIB's control plane must treat fault announcements as its");
    println!("highest-priority traffic.");
}
