//! Stochastic fault-injection campaign on the packet-level simulators.
//!
//! ```sh
//! cargo run --release --example fault_injection          # full grid
//! cargo run --release --example fault_injection -- --quick
//! ```
//!
//! Runs the built-in `faceoff` campaign: BDR and DRA side by side
//! under accelerated random component failures. Cells sharing a seed
//! group replay *byte-identical* offered traffic and fault timelines
//! on both architectures, then the engine reduces replications to
//! delivery/latency/availability aggregates. This is the experiment
//! the paper could not run: its evaluation was Markov models only.

use dra::campaign::engine::{run, RunOptions};
use dra::campaign::json::Json;
use dra::campaign::registry;
use dra::campaign::report::{artifact_table, print_table};

fn cell_delivery(cell: &Json) -> f64 {
    cell.get("delivery")
        .and_then(|d| d.get("mean"))
        .and_then(Json::as_f64)
        .unwrap_or(f64::NAN)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = registry::build("faceoff", quick).expect("built-in faceoff spec");
    println!("Fault-injection campaign `{}`:", spec.name);
    println!("  {}", spec.description);
    println!(
        "  {} cells, master seed {}, digest {}",
        spec.cells.len(),
        spec.master_seed,
        spec.digest()
    );

    let outcome = run(&spec, &RunOptions::default()).expect("campaign runs");
    let artifact = outcome.artifact.expect("campaign completed");
    let (headers, rows) = artifact_table(&artifact);
    print_table(
        "BDR vs DRA under identical sampled fault/repair schedules",
        &headers,
        &rows,
    );

    // Paired contrast: cells come in (BDR, DRA) pairs per load.
    let cells = artifact
        .get("cells")
        .and_then(Json::as_arr)
        .expect("artifact cells");
    println!();
    for (pair, &load) in cells.chunks(2).zip(registry::faceoff_loads(quick)) {
        let (bdr, dra) = (cell_delivery(&pair[0]), cell_delivery(&pair[1]));
        println!(
            "  load {:>3.0}%: DRA recovers {:.2} points of delivery over BDR \
             ({:.2}% -> {:.2}%)",
            load * 100.0,
            100.0 * (dra - bdr),
            100.0 * bdr,
            100.0 * dra,
        );
    }

    println!("\nReading: under the same offered traffic and the same fault");
    println!("timelines, DRA converts most of BDR's ingress/egress-down losses");
    println!("into covered deliveries over the EIB; its availability only dips");
    println!("when the EIB itself (or a PIU) is down, or no same-protocol peer");
    println!("remains.");
}
