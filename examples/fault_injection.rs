//! Stochastic fault-injection campaign on the packet-level simulators.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```
//!
//! Runs BDR and DRA side by side under accelerated random component
//! failures (same seed ⇒ byte-identical offered traffic;
//! statistically identical failure processes) and compares delivery,
//! coverage, and measured per-card availability. This is the
//! experiment the paper could not run: its evaluation was Markov
//! models only.

use dra::core::sim::{DraConfig, DraRouter};
use dra::router::bdr::{BdrConfig, BdrRouter};
use dra::router::faults::{FaultGranularity, FaultInjector};
use dra::router::metrics::{DropCause, RouterMetrics};

fn report(name: &str, m: &RouterMetrics, horizon: f64) {
    let avail: Vec<f64> = m
        .lcs
        .iter()
        .map(|l| l.availability.average(horizon))
        .collect();
    let mean_avail = avail.iter().sum::<f64>() / avail.len() as f64;
    println!("\n--- {name} ---");
    println!(
        "  delivered {:.2} MB of {:.2} MB offered ({:.2}%)",
        m.total_delivered_bytes() as f64 / 1e6,
        m.total_offered_bytes() as f64 / 1e6,
        100.0 * m.byte_delivery_ratio()
    );
    for cause in DropCause::ALL {
        let d = m.total_drops(cause);
        if d > 0 {
            println!("  drops[{cause}] = {d}");
        }
    }
    let covered: u64 = m.lcs.iter().map(|l| l.covered_packets).sum();
    if covered > 0 {
        println!("  covered packets (via EIB) = {covered}");
    }
    println!("  mean measured LC availability = {mean_avail:.4}");
}

fn main() {
    // Accelerate dependably: inflate the paper's failure rates x1000
    // (MTTF 50000 h -> 50 h) while keeping the 3 h repair, then map
    // hours to milliseconds of simulated time. A 40 ms run now sees
    // several failure/repair cycles per card with ~6% downtime each.
    let mut injector = FaultInjector::new(3.0, FaultGranularity::PerComponent);
    injector.rates = dra::core::montecarlo::inflated_rates(1000.0);
    let scale = 4e-3 / 50.0;
    let horizon = 40e-3;
    let seed = 2026;

    let base = BdrConfig {
        n_lcs: 6,
        load: 0.25,
        faults: Some(FaultInjector {
            granularity: FaultGranularity::WholeLc,
            ..injector.clone()
        }),
        fault_delay_scale: scale,
        ..BdrConfig::default()
    };

    println!(
        "Fault-injection campaign: 6 cards, 25% load, {:.0} ms horizon,",
        horizon * 1e3
    );
    println!("inflated failures (LC MTTF ≈ 4 ms), repairs ≈ 0.24 ms.");

    let mut bdr = BdrRouter::simulation(base.clone(), seed);
    bdr.run_until(horizon);
    report("BDR baseline", &bdr.model().metrics, horizon);

    let mut dra_cfg = DraConfig {
        router: base,
        ..Default::default()
    };
    dra_cfg.router.faults = Some(injector);
    let mut dra = DraRouter::simulation(dra_cfg, seed);
    dra.run_until(horizon);
    report("DRA", &dra.model().metrics, horizon);

    println!("\nReading: under the same offered traffic, DRA converts most of");
    println!("BDR's ingress/egress-down losses into covered deliveries; its");
    println!("measured availability only dips when the EIB itself (or a PIU)");
    println!("is down, or no same-protocol peer remains.");
}
