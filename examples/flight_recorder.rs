//! Flight recorder + lifecycle sampling on one DRA cell.
//!
//! ```sh
//! cargo run --release --features telemetry --example flight_recorder
//! cargo run --release --features telemetry --example flight_recorder -- \
//!     --trace my_trace.json
//! ```
//!
//! Runs a single DRA simulation with a scripted SRU failure while the
//! telemetry hub records: registry counters across every layer (DES
//! kernel, ingress, fabric, EIB, reassembly), the latency
//! decomposition of the deterministic 1-in-N packet sample, and the
//! flight-recorder ring — frozen at the first EIB-oversubscription
//! drop if one occurs. It then writes a Chrome `trace_event` file
//! (open it at <https://ui.perfetto.dev>) and prints the mergeable
//! `dra-telemetry/v1` snapshot.
//!
//! Telemetry observes without steering: the simulation consumes the
//! exact same random numbers and schedules the exact same events as a
//! run without the hub, which is why campaign artifacts stay
//! byte-identical when it is on.

use dra::core::sim::{DraConfig, DraRouter};
use dra::router::bdr::BdrConfig;
use dra::router::components::ComponentKind;
use dra::telemetry as tm;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "target/flight_recorder.trace.json".to_string());

    // Sample every 16th packet and keep the trace for export.
    tm::enable(tm::Config {
        sample_every: 16,
        collect_trace: true,
        ..tm::Config::default()
    });

    // One faceoff-shaped cell: 6 cards at load 0.5, SRU failure at
    // 10 ms, repair at 25 ms, horizon 40 ms.
    let cfg = DraConfig {
        router: BdrConfig {
            n_lcs: 6,
            load: 0.5,
            ..BdrConfig::default()
        },
        ..DraConfig::default()
    };
    let mut sim = DraRouter::simulation(cfg, 2026);
    sim.run_until(10e-3);
    let now = sim.now();
    sim.model_mut()
        .fail_component_now(0, ComponentKind::Sru, now);
    sim.run_until(25e-3);
    let now = sim.now();
    sim.model_mut().repair_lc_now(0, now);
    sim.run_until(40e-3);

    let snap = tm::snapshot().expect("hub is enabled");
    let trace = tm::take_trace_events();
    tm::disable();

    println!("counters:");
    for (name, v) in &snap.counters {
        if *v > 0 {
            println!("  {name:<28} {v}");
        }
    }
    println!(
        "\nlifecycle sample (1 in {}): {} packets, {} still in flight",
        snap.sample_every, snap.sampled_packets, snap.open_tracks
    );
    for (name, hist) in &snap.hists {
        if hist.count() > 0 {
            println!(
                "  {name:<28} n={:<6} p50={:>9.3e}s p99={:>9.3e}s",
                hist.count(),
                hist.quantile(0.5),
                hist.quantile(0.99),
            );
        }
    }
    match &snap.anomaly {
        Some(a) => println!(
            "\nflight recorder tripped at t={:.6}s ({}): {} events frozen",
            a.t,
            a.reason,
            a.events.len()
        ),
        None => println!(
            "\nflight recorder armed, no anomaly ({} events ring-buffered)",
            snap.ring_appended
        ),
    }

    std::fs::write(&trace_path, tm::chrome_trace_json(&trace)).expect("write trace");
    println!(
        "\nwrote {} trace events to {trace_path} — load it at https://ui.perfetto.dev",
        trace.len()
    );

    println!("\ndra-telemetry/v1 snapshot:\n{}", snap.to_json_string());
}
