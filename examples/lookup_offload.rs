//! Deep dive into DRA's remote-lookup path (Case 2, failed LFE).
//!
//! ```sh
//! cargo run --release --example lookup_offload
//! ```
//!
//! When only the forwarding engine dies, packets still flow through
//! the card's own PDLU/SRU and the fabric — only the *lookup* detours
//! over the EIB control lines as an REQ_L/REP_L exchange. This example
//! measures what that costs: added latency, control-line traffic, and
//! CSMA/CD collisions as the load (and hence lookup rate) grows.

use dra::core::sim::{DraConfig, DraRouter};
use dra::router::bdr::BdrConfig;
use dra::router::components::ComponentKind;

fn run(load: f64) -> (f64, f64, u64, u64, f64) {
    let mut sim = DraRouter::simulation(
        DraConfig {
            router: BdrConfig {
                n_lcs: 4,
                load,
                ..BdrConfig::default()
            },
            ..Default::default()
        },
        7,
    );
    // Phase 1: healthy latency baseline.
    sim.run_until(2e-3);
    let healthy_latency = sim.model().metrics.lcs[0].latency.mean();

    // Phase 2: LC0 loses its LFE.
    let now = sim.now();
    sim.model_mut()
        .fail_component_now(0, ComponentKind::Lfe, now);
    // Reset LC0's latency statistics by reading the delta at the end:
    // simpler — compare healthy phase mean vs overall mean shift.
    sim.run_until(8e-3);

    let m = &sim.model().metrics;
    let lc0 = &m.lcs[0];
    (
        healthy_latency,
        lc0.latency.mean(),
        m.eib_control_packets,
        m.eib_collisions,
        lc0.delivery_ratio(),
    )
}

fn main() {
    println!("Remote-lookup offload cost (4 cards, LC0's LFE fails at 2 ms)\n");
    println!(
        "{:>6} {:>16} {:>16} {:>12} {:>12} {:>10}",
        "load", "healthy lat", "overall lat", "ctrl pkts", "collisions", "delivery"
    );
    for &load in &[0.05, 0.15, 0.3, 0.5] {
        let (healthy, overall, ctrl, coll, ratio) = run(load);
        println!(
            "{:>5.0}% {:>13.2} us {:>13.2} us {:>12} {:>12} {:>9.1}%",
            load * 100.0,
            healthy * 1e6,
            overall * 1e6,
            ctrl,
            coll,
            ratio * 100.0
        );
    }
    println!("\nReading: every lookup adds two control packets (~0.26 us each at");
    println!("1 Gbps) plus queueing on the shared CSMA/CD lines; collisions and");
    println!("the latency premium grow with the lookup rate, exactly the");
    println!("contention the paper's bus controller arbitrates.");
}
