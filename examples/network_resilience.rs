//! The headline network-level result: end-to-end delivery ratio and
//! flow availability of a fat-tree(4) built from BDR routers vs the
//! same fabric built from DRA routers, as a function of how many
//! routers are concurrently degraded.
//!
//! ```sh
//! cargo run --release --example network_resilience
//! ```
//!
//! Per-router, DRA's EIB coverage turns a dead switching/forwarding
//! card into a serviceable one. Composed across a network, that is the
//! difference between rerouting around k black holes and not noticing
//! them at all: identical topology, identical flows, identical fault
//! instants — only the architecture differs.

use dra::core::handle::ArchKind;
use dra::topo::engine::build_network;
use dra::topo::link::LinkConfig;
use dra::topo::spec::{FlowSpec, TopoCellSpec, TopoFaultSpec};
use dra::topo::topology::TopologyKind;
use dra::topo::NetStats;

const MASTER_SEED: u64 = 0xD8A_70B0;
const HORIZON_S: f64 = 20e-3;

/// One (architecture, k-failed-routers) point on the curve.
fn run_point(arch: ArchKind, k: u32) -> NetStats {
    let faults = if k == 0 {
        TopoFaultSpec::None
    } else {
        TopoFaultSpec::FailRouters {
            k,
            at_s: HORIZON_S * 0.25,
        }
    };
    let cell = TopoCellSpec {
        id: format!("{}/fat-tree-k4/{}", arch.label(), faults.label()),
        arch,
        topology: TopologyKind::FatTree { k: 4 },
        link: LinkConfig::default(),
        flows: FlowSpec {
            n_flows: 24,
            rate_pps: 40_000.0,
            packet_bytes: 700,
        },
        faults,
        horizon_s: HORIZON_S,
        drain_s: HORIZON_S * 0.25,
        replications: 1,
        // Same group for every point: k is the only moving part.
        seed_group: 0,
    };
    let net = build_network(&cell, MASTER_SEED, 0);
    let mut sim = net.simulation(MASTER_SEED);
    sim.run_until(HORIZON_S);
    let stats = sim.into_model().stats;
    assert!(stats.conserved(), "packet conservation violated");
    stats
}

fn main() {
    println!("fat-tree(4): 20 routers, 32 cables, 24 Poisson flows, 40 kpps each");
    println!("degrade k routers (SRU dead on every even linecard) at t=5 ms\n");
    println!(
        "{:>2}  {:>12} {:>10}  |  {:>12} {:>10}  |  DRA advantage",
        "k", "BDR deliv", "BDR avail", "DRA deliv", "DRA avail"
    );
    for k in [0u32, 1, 2, 4, 8] {
        let bdr = run_point(ArchKind::Bdr, k);
        let dra = run_point(ArchKind::Dra, k);
        // Twin runs share seeds: identical offered traffic.
        assert_eq!(bdr.injected, dra.injected);
        let (bd, dd) = (bdr.delivery_ratio(), dra.delivery_ratio());
        println!(
            "{k:>2}  {:>11.3}% {:>10.3}  |  {:>11.3}% {:>10.3}  |  +{:.3}% delivery",
            100.0 * bd,
            bdr.flow_availability(0.99),
            100.0 * dd,
            dra.flow_availability(0.99),
            100.0 * (dd - bd),
        );
    }
    println!(
        "\nSame flows, same failure instants, same seeds — the delivery gap\n\
         is purely the EIB covering dead cards that BDR must black-hole."
    );
}
