//! Network-scope observability on a fat-tree(4) under an SRU kill.
//!
//! ```sh
//! cargo run --release --features telemetry --example network_trace
//! cargo run --release --features telemetry --example network_trace -- \
//!     --trace my_trace.json --snapshot my_snapshot.json
//! ```
//!
//! Runs a 20-router fat-tree(4) with cross-pod flows while scripted
//! faults land (an SRU kill on an edge switch, a link cut in its pod),
//! with the network-scope collector on:
//!
//! * per-router counters (transits / covered / forwards / drops by
//!   cause) merged across the whole network,
//! * hop-resolved **flow spans** for the deterministic packet sample,
//!   exported as a Chrome `trace_event` file with one track per router
//!   and flow arrows across hops (open it at
//!   <https://ui.perfetto.dev>),
//! * the **fault-forensics ledger** correlating each scripted action
//!   with the cumulative drop census and per-flow availability
//!   transitions,
//! * a forced conservation-ledger violation demonstrating the
//!   flight-recorder freeze riding in the snapshot, and
//! * a second run on 2 sim threads to show the **PDES engine
//!   profiler** (per-LP load, barrier stalls, lookahead distribution)
//!   in the non-deterministic `profile` section.
//!
//! Telemetry observes without steering: the deterministic snapshot
//! section is byte-identical at any `--sim-threads`, and the
//! simulation results are byte-identical with collection off.

use dra::core::handle::ArchKind;
use dra::router::components::ComponentKind;
use dra::telemetry as tm;
use dra::topo::{Flow, NetAction, NetConfig, NetScenario, NetworkSim, Topology, TopologyKind};

const HORIZON_S: f64 = 8e-3;

fn build() -> NetworkSim {
    let topo = Topology::build(TopologyKind::FatTree { k: 4 });
    let hosts = topo.hosts.clone();
    let cfg = NetConfig {
        traffic_stop_s: 6e-3,
        ..NetConfig::default()
    };
    let flows = vec![
        Flow {
            src: hosts[0],
            dst: hosts[4],
            rate_pps: 40_000.0,
        },
        Flow {
            src: hosts[1],
            dst: hosts[5],
            rate_pps: 40_000.0,
        },
        Flow {
            src: hosts[6],
            dst: hosts[2],
            rate_pps: 25_000.0,
        },
    ];
    let mut net = NetworkSim::new(topo, ArchKind::Dra, cfg, flows, 0xFA7);
    let scenario = NetScenario::new()
        .at(
            2e-3,
            NetAction::FailComponent {
                node: hosts[0],
                lc: 0,
                kind: ComponentKind::Sru,
            },
        )
        .at(
            2.5e-3,
            NetAction::FailLink {
                a: hosts[0],
                b: net.topo.adj[hosts[0] as usize][0],
            },
        )
        .at(
            5e-3,
            NetAction::RepairLc {
                node: hosts[0],
                lc: 0,
            },
        )
        .at(
            5.5e-3,
            NetAction::RepairLink {
                a: hosts[0],
                b: net.topo.adj[hosts[0] as usize][0],
            },
        );
    net.set_scenario(&scenario);
    net
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |flag: &str, default: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| default.to_string())
    };
    let trace_path = arg("--trace", "target/network_trace.trace.json");
    let snap_path = arg("--snapshot", "target/network_trace.snapshot.json");

    tm::enable(tm::Config {
        sample_every: 16,
        ..tm::Config::default()
    });

    // Serial run: counters, sampled flow spans, forensics ledger.
    let mut net = build();
    net.enable_net_telemetry(16);
    let mut net = net.run(2026, HORIZON_S);
    assert!(net.stats.conserved(), "model conserves packets");

    // Demonstrate the forensics freeze: misstate the ledger the way a
    // real conservation bug would read, so the export carries the
    // frozen flight-recorder window. (The model itself conserves.)
    net.stats.in_flight += 1;
    if !net.stats.conserved() {
        tm::anomaly("net: conservation ledger violation (demo)");
    }
    net.stats.in_flight -= 1;

    let report = net
        .export_net_telemetry(HORIZON_S, 0, 0)
        .expect("collector was enabled");
    let snap = &report.snapshot;

    println!(
        "fat-tree(4): {} routers, 3 flows, SRU kill + link cut\n",
        snap.nodes.len()
    );
    println!("per-router counters (routers with any traffic):");
    for (n, c) in snap.nodes.iter().enumerate() {
        if c.transits > 0 || c.actions > 0 {
            println!(
                "  node {n:>2}  transit={:<6} covered={:<5} forward={:<6} deliver={:<6} drops={:<4} actions={}",
                c.transits,
                c.covered,
                c.forwards,
                c.delivered,
                c.dropped_total(),
                c.actions,
            );
        }
    }

    println!(
        "\nfault-forensics ledger ({} entries):",
        snap.forensics.len()
    );
    for e in &snap.forensics {
        match e.kind {
            tm::ForensicKind::Action => {
                println!(
                    "  t={:.6}s  action    {:<22} drops so far: {}",
                    e.t,
                    e.label,
                    e.drops_at.iter().sum::<u64>()
                );
            }
            tm::ForensicKind::FlowDown => {
                println!(
                    "  t={:.6}s  flow {} DOWN ({})",
                    e.t, e.flow, snap.drop_causes[e.cause as usize]
                );
            }
            tm::ForensicKind::FlowUp => {
                println!("  t={:.6}s  flow {} UP", e.t, e.flow);
            }
        }
    }

    match &snap.frozen {
        Some(a) => println!(
            "\nflight recorder frozen at t={:.6}s ({}): {} events",
            a.t,
            a.reason,
            a.events.len()
        ),
        None => println!("\nflight recorder armed, nothing frozen"),
    }

    std::fs::write(&trace_path, tm::chrome_trace_json(&report.trace)).expect("write trace");
    println!(
        "wrote {} sampled-flow trace events to {trace_path} — load at https://ui.perfetto.dev",
        report.trace.len()
    );

    // Parallel run: same deterministic section, plus the engine
    // profiler in the non-deterministic `profile` section.
    let mut par = build();
    par.cfg.sim_threads = 2;
    par.enable_net_telemetry(16);
    let mut par = par.run(2026, HORIZON_S);
    let mut merged = report.snapshot;
    let preport = par
        .export_net_telemetry(HORIZON_S, 4096, 1 << 40)
        .expect("collector was enabled");
    if let Some(p) = &preport.snapshot.profile {
        println!(
            "\nPDES profiler ({} threads): {} windows ({} busy), {} cross msgs",
            p.threads, p.windows, p.nonempty_windows, p.cross_messages
        );
        println!(
            "  wall {:.3} ms, barrier stall {:.3} ms, load imbalance {:.2}x",
            p.wall_ns as f64 / 1e6,
            p.barrier_wait_ns as f64 / 1e6,
            p.load_imbalance()
        );
        println!("  per-LP events: {:?}", p.lp_events);
        println!(
            "  lookahead: min {:.1} us / mean {:.1} us / max {:.1} us",
            p.lookahead_min_s * 1e6,
            p.lookahead_sum_s / p.lookahead_lps.max(1) as f64 * 1e6,
            p.lookahead_max_s * 1e6
        );
    }

    // Snapshots from different cells/runs merge associatively.
    merged.merge(&preport.snapshot);
    std::fs::write(&snap_path, merged.to_json_string()).expect("write snapshot");
    println!("\nwrote merged dra-topo-telemetry/v1 snapshot to {snap_path}");
    tm::disable();
}
