//! Five-minute tour of the DRA reproduction.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's dependability models, prints the headline
//! numbers, then runs a short packet-level simulation with a scripted
//! linecard failure to show DRA's coverage in action.

use dra::core::analysis::availability::{bdr_availability, dra_availability};
use dra::core::analysis::nines::format_nines;
use dra::core::analysis::reliability::{
    bdr_reliability_model, dra_model, reliability_curve, DraParams,
};
use dra::core::sim::{DraConfig, DraRouter};
use dra::router::bdr::BdrConfig;
use dra::router::components::{ComponentKind, FailureRates};

fn main() {
    println!("DRA reproduction quickstart (paper: Mandviwalla & Tzeng, ICPP 2004)\n");

    // ---- 1. Reliability: BDR vs DRA at the paper's rates ----------
    let bdr = bdr_reliability_model(&FailureRates::PAPER, None);
    let r_bdr = reliability_curve(&bdr.chain, bdr.start, bdr.failed, &[40_000.0])[0];

    let dra = dra_model(&DraParams::new(9, 4));
    let r_dra = reliability_curve(&dra.chain, dra.start, dra.failed, &[40_000.0])[0];

    println!("LC reliability at 40,000 h:");
    println!("  BDR               R = {r_bdr:.3}   (any component failure kills the card)");
    println!("  DRA (N=9, M=4)    R = {r_dra:.3}   (healthy cards cover the faulty one)\n");

    // ---- 2. Availability with a 3-hour repair process --------------
    let mu = 1.0 / 3.0;
    let a_bdr = bdr_availability(&FailureRates::PAPER, mu);
    let a_dra = dra_availability(&DraParams::new(3, 2), mu);
    println!("Steady-state availability (repair ~3 h):");
    println!("  BDR               A = {}", format_nines(a_bdr));
    println!(
        "  DRA (N=3, M=2)    A = {}   — one covering card buys four extra nines\n",
        format_nines(a_dra)
    );

    // ---- 3. Packet-level simulation with a scripted failure --------
    println!("Packet simulation: 6-card router at 20% load, LC0's forwarding");
    println!("engine (LFE) fails at t = 1 ms; lookups move to a peer card.\n");
    let mut sim = DraRouter::simulation(
        DraConfig {
            router: BdrConfig {
                n_lcs: 6,
                load: 0.2,
                ..BdrConfig::default()
            },
            ..Default::default()
        },
        42,
    );
    sim.run_until(1e-3);
    let now = sim.now();
    sim.model_mut()
        .fail_component_now(0, ComponentKind::Lfe, now);
    sim.run_until(4e-3);

    let m = &sim.model().metrics;
    let lc0 = &m.lcs[0];
    println!("  LC0 offered   : {} packets", lc0.offered_packets);
    println!("  LC0 delivered : {} packets", lc0.delivered_packets);
    println!(
        "  LC0 covered   : {} packets (served via the EIB)",
        lc0.covered_packets
    );
    println!(
        "  control pkts  : {} (REQ_L/REP_L lookups)",
        m.eib_control_packets
    );
    println!("  collisions    : {}", m.eib_collisions);
    println!(
        "  delivery ratio: {:.1}% (BDR would have dropped all of LC0's traffic)",
        100.0 * lc0.delivery_ratio()
    );
}
