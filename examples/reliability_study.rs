//! Reliability engineering study: how many covering cards does a
//! deployment actually need?
//!
//! ```sh
//! cargo run --release --example reliability_study
//! ```
//!
//! Sweeps N (router size) and M (same-protocol population), reporting
//! R(t) at three mission times plus the MTTF, and shows the paper's
//! diminishing-returns effect: a single covering card captures most of
//! the benefit.

use dra::core::analysis::reliability::{
    bdr_reliability_model, dra_model, reliability_curve, DraParams,
};
use dra::markov::absorbing;
use dra::router::components::FailureRates;

fn main() {
    let times = [10_000.0, 40_000.0, 80_000.0];

    println!("LC reliability and MTTF (paper rates, Literal T' semantics)\n");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>14}",
        "configuration", "R(10kh)", "R(40kh)", "R(80kh)", "MTTF (h)"
    );

    // Baseline.
    let bdr = bdr_reliability_model(&FailureRates::PAPER, None);
    let r = reliability_curve(&bdr.chain, bdr.start, bdr.failed, &times);
    let mttf = absorbing::analyze(&bdr.chain)
        .expect("BDR model has an absorbing state")
        .mtta_from(bdr.start)
        .expect("start is transient");
    println!(
        "{:<16} {:>10.4} {:>10.4} {:>10.4} {:>14.0}",
        "BDR", r[0], r[1], r[2], mttf
    );

    for (n, m) in [
        (3, 2),
        (4, 2),
        (6, 2),
        (6, 3),
        (6, 6),
        (9, 2),
        (9, 4),
        (9, 8),
    ] {
        let model = dra_model(&DraParams::new(n, m));
        let r = reliability_curve(&model.chain, model.start, model.failed, &times);
        let mttf = absorbing::analyze(&model.chain)
            .expect("reliability model has F absorbing")
            .mtta_from(model.start)
            .expect("start is transient");
        println!(
            "{:<16} {:>10.4} {:>10.4} {:>10.4} {:>14.0}",
            format!("DRA N={n} M={m}"),
            r[0],
            r[1],
            r[2],
            mttf
        );
    }

    println!("\nObservations (matching §5.1 of the paper):");
    println!(" * a single covering card (N=3, M=2) already multiplies the MTTF;");
    println!(" * growing N helps more than growing M — the PI units dominate");
    println!("   because they fail more often (1.4e-5/h vs 6e-6/h);");
    println!(" * beyond roughly four same-protocol cards the curves coincide.");
}
