//! `dra-cli` — command-line front end to the DRA reproduction.
//!
//! ```text
//! dra-cli reliability  --n 9 --m 4 --t 40000
//! dra-cli availability --n 9 --m 4 --repair-hours 3
//! dra-cli mttf         --n 6 --m 3
//! dra-cli degradation  --n 6 --load 0.5 [--bus-gbps 40]
//! dra-cli simulate     --n 6 --load 0.3 --horizon-ms 5 --fail 0:sru:1 [--bdr]
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs only) to keep
//! the dependency set identical to the library's.

use dra::core::analysis::availability::{bdr_availability, dra_availability};
use dra::core::analysis::degradation::{figure8_series, DegradationParams};
use dra::core::analysis::nines::format_nines;
use dra::core::analysis::reliability::{
    bdr_reliability_model, dra_model, reliability_curve, DraParams,
};
use dra::core::sim::{DraConfig, DraRouter};
use dra::router::bdr::{BdrConfig, BdrRouter};
use dra::router::components::{ComponentKind, FailureRates};
use dra::router::metrics::{DropCause, RouterMetrics};
use std::collections::HashMap;
use std::process::ExitCode;

/// Minimal `--key value` argument map.
#[derive(Debug)]
struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let key = raw[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got {:?}", raw[i]))?
                .to_string();
            if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                values.insert(key, raw[i + 1].clone());
                i += 2;
            } else {
                flags.push(key);
                i += 1;
            }
        }
        Ok(Args { values, flags })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn parse_component(s: &str) -> Result<ComponentKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "piu" => Ok(ComponentKind::Piu),
        "pdlu" => Ok(ComponentKind::Pdlu),
        "sru" => Ok(ComponentKind::Sru),
        "lfe" => Ok(ComponentKind::Lfe),
        "bc" | "buscontroller" => Ok(ComponentKind::BusController),
        other => Err(format!("unknown component {other:?} (piu/pdlu/sru/lfe/bc)")),
    }
}

/// A `--fail lc:component:at_ms` specification.
fn parse_fail(spec: &str) -> Result<(u16, ComponentKind, f64), String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != 3 {
        return Err(format!("--fail wants lc:component:at_ms, got {spec:?}"));
    }
    let lc: u16 = parts[0]
        .parse()
        .map_err(|_| format!("bad linecard index {:?}", parts[0]))?;
    let kind = parse_component(parts[1])?;
    let at_ms: f64 = parts[2]
        .parse()
        .map_err(|_| format!("bad time {:?}", parts[2]))?;
    Ok((lc, kind, at_ms))
}

fn cmd_reliability(args: &Args) -> Result<(), String> {
    let n: usize = args.get("n", 9)?;
    let m: usize = args.get("m", 4)?;
    let t: f64 = args.get("t", 40_000.0)?;
    let model = dra_model(&DraParams::new(n, m));
    let r = reliability_curve(&model.chain, model.start, model.failed, &[t])[0];
    let bdr = bdr_reliability_model(&FailureRates::PAPER, None);
    let rb = reliability_curve(&bdr.chain, bdr.start, bdr.failed, &[t])[0];
    println!("R_DRA(N={n}, M={m}, t={t}h) = {r:.6}");
    println!("R_BDR(t={t}h)              = {rb:.6}");
    Ok(())
}

fn cmd_availability(args: &Args) -> Result<(), String> {
    let n: usize = args.get("n", 9)?;
    let m: usize = args.get("m", 4)?;
    let hours: f64 = args.get("repair-hours", 3.0)?;
    if hours <= 0.0 {
        return Err("--repair-hours must be positive".into());
    }
    let mu = 1.0 / hours;
    let a = dra_availability(&DraParams::new(n, m), mu);
    let ab = bdr_availability(&FailureRates::PAPER, mu);
    println!(
        "A_DRA(N={n}, M={m}, repair={hours}h) = {} ({a:.12})",
        format_nines(a)
    );
    println!(
        "A_BDR(repair={hours}h)              = {} ({ab:.12})",
        format_nines(ab)
    );
    Ok(())
}

fn cmd_mttf(args: &Args) -> Result<(), String> {
    let n: usize = args.get("n", 6)?;
    let m: usize = args.get("m", 3)?;
    let model = dra_model(&DraParams::new(n, m));
    let analysis = dra::markov::absorbing::analyze(&model.chain)
        .map_err(|e| format!("absorbing analysis failed: {e}"))?;
    let mttf = analysis
        .mtta_from(model.start)
        .ok_or("start state is not transient")?;
    println!("MTTF_DRA(N={n}, M={m}) = {mttf:.0} h");
    println!(
        "MTTF_BDR              = {:.0} h",
        1.0 / FailureRates::PAPER.lc
    );
    Ok(())
}

fn cmd_degradation(args: &Args) -> Result<(), String> {
    let n: usize = args.get("n", 6)?;
    let load: f64 = args.get("load", 0.5)?;
    let bus_gbps: f64 = args.get("bus-gbps", 40.0)?;
    if !(0.0..=1.0).contains(&load) || load == 0.0 {
        return Err("--load must be in (0, 1]".into());
    }
    let p = DegradationParams {
        n,
        c_lc_bps: 10e9,
        load,
        bus_capacity_bps: bus_gbps * 1e9,
    };
    println!(
        "B_faulty (% of required) for N={n}, L={:.0}%:",
        load * 100.0
    );
    for (x, pct) in figure8_series(&p) {
        println!("  X_faulty={x}: {pct:.1}%");
    }
    Ok(())
}

fn print_sim_report(m: &RouterMetrics, horizon: f64) {
    println!(
        "delivered {:.3} MB of {:.3} MB offered ({:.2}%)",
        m.total_delivered_bytes() as f64 / 1e6,
        m.total_offered_bytes() as f64 / 1e6,
        100.0 * m.byte_delivery_ratio()
    );
    for cause in DropCause::ALL {
        let d = m.total_drops(cause);
        if d > 0 {
            println!("  drops[{cause}] = {d}");
        }
    }
    let covered: u64 = m.lcs.iter().map(|l| l.covered_packets).sum();
    if covered > 0 {
        println!("  covered via EIB = {covered} packets");
    }
    for (i, lc) in m.lcs.iter().enumerate() {
        println!(
            "  LC{i}: offered={} delivered={} avail={:.4}",
            lc.offered_packets,
            lc.delivered_packets,
            lc.availability.average(horizon)
        );
    }
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    use dra::core::analysis::planner::{
        max_load_for_full_coverage, max_repair_hours_for_availability, min_m_for_availability,
    };
    let n: usize = args.get("n", 8)?;
    let target: usize = args.get("target-nines", 8)?;
    let hours: f64 = args.get("repair-hours", 3.0)?;
    if n < 3 || hours <= 0.0 || target == 0 {
        return Err("need --n >= 3, --repair-hours > 0, --target-nines >= 1".into());
    }
    let mu = 1.0 / hours;
    println!("Plan for N={n}, repair={hours}h, target {target} nines:");
    match min_m_for_availability(n, mu, target) {
        Some(m) => println!("  minimum same-protocol population M = {m}"),
        None => println!("  unreachable even with M = N = {n} at this repair speed"),
    }
    match max_repair_hours_for_availability(n, 2.min(n), target) {
        Some(h) => println!("  slowest repair at M=2 that still works: {h:.1} h"),
        None => println!("  M=2 cannot reach the target at any repair speed >= 30 min"),
    }
    println!("  full-coverage load headroom:");
    for x in 1..n.min(5) {
        println!(
            "    survive {x} simultaneous card failure(s) at full service up to L = {:.0}%",
            100.0 * max_load_for_full_coverage(n, x)
        );
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let n: usize = args.get("n", 6)?;
    let load: f64 = args.get("load", 0.3)?;
    let horizon_ms: f64 = args.get("horizon-ms", 5.0)?;
    let seed: u64 = args.get("seed", 42)?;
    let fails: Vec<(u16, ComponentKind, f64)> = args
        .values
        .get("fail")
        .map(|s| s.split(',').map(parse_fail).collect::<Result<_, _>>())
        .transpose()?
        .unwrap_or_default();
    for &(lc, _, at) in &fails {
        if lc as usize >= n {
            return Err(format!("--fail: linecard {lc} out of range (N={n})"));
        }
        if at < 0.0 || at > horizon_ms {
            return Err(format!("--fail: time {at} ms outside the horizon"));
        }
    }
    let horizon = horizon_ms * 1e-3;
    let base = BdrConfig {
        n_lcs: n,
        load,
        ..BdrConfig::default()
    };

    // Run the scripted scenario: advance to each failure time in order.
    let mut ordered = fails.clone();
    ordered.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite times"));

    if args.flag("bdr") {
        let mut sim = BdrRouter::simulation(base, seed);
        for (lc, kind, at_ms) in ordered {
            sim.run_until(at_ms * 1e-3);
            let now = sim.now();
            sim.model_mut().fail_component_now(lc, kind, now);
            println!("t={at_ms} ms: failed LC{lc} {kind}");
        }
        sim.run_until(horizon);
        println!("-- BDR --");
        print_sim_report(&sim.model().metrics, horizon);
    } else {
        let mut sim = DraRouter::simulation(
            DraConfig {
                router: base,
                ..Default::default()
            },
            seed,
        );
        for (lc, kind, at_ms) in ordered {
            sim.run_until(at_ms * 1e-3);
            let now = sim.now();
            sim.model_mut().fail_component_now(lc, kind, now);
            println!("t={at_ms} ms: failed LC{lc} {kind}");
        }
        sim.run_until(horizon);
        println!("-- DRA --");
        print_sim_report(&sim.model().metrics, horizon);
    }
    Ok(())
}

const USAGE: &str = "usage: dra-cli <command> [--options]
commands:
  reliability  --n N --m M --t HOURS
  availability --n N --m M --repair-hours H
  mttf         --n N --m M
  degradation  --n N --load L [--bus-gbps G]
  plan         --n N --target-nines K --repair-hours H
  simulate     --n N --load L --horizon-ms MS [--seed S] [--bdr]
               [--fail lc:piu|pdlu|sru|lfe|bc:at_ms[,lc:comp:ms...]]";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(&raw[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "reliability" => cmd_reliability(&args),
        "availability" => cmd_availability(&args),
        "mttf" => cmd_mttf(&args),
        "degradation" => cmd_degradation(&args),
        "plan" => cmd_plan(&args),
        "simulate" => cmd_simulate(&args),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parse_key_values_and_flags() {
        let a = args(&["--n", "9", "--bdr", "--load", "0.5"]);
        assert_eq!(a.get::<usize>("n", 0).unwrap(), 9);
        assert_eq!(a.get::<f64>("load", 0.0).unwrap(), 0.5);
        assert_eq!(a.get::<u64>("seed", 7).unwrap(), 7, "default applies");
        assert!(a.flag("bdr"));
        assert!(!a.flag("quick"));
    }

    #[test]
    fn parse_rejects_bare_words() {
        assert!(Args::parse(&["n".to_string()]).is_err());
    }

    #[test]
    fn parse_rejects_bad_numbers() {
        let a = args(&["--n", "lots"]);
        assert!(a.get::<usize>("n", 0).is_err());
    }

    #[test]
    fn fail_spec_round_trip() {
        let (lc, kind, at) = parse_fail("3:sru:1.5").unwrap();
        assert_eq!((lc, kind, at), (3, ComponentKind::Sru, 1.5));
        assert!(parse_fail("3:sru").is_err());
        assert!(parse_fail("x:sru:1").is_err());
        assert!(parse_fail("3:cpu:1").is_err());
        assert!(parse_fail("3:sru:soon").is_err());
    }

    #[test]
    fn component_names() {
        assert_eq!(parse_component("PDLU").unwrap(), ComponentKind::Pdlu);
        assert_eq!(parse_component("bc").unwrap(), ComponentKind::BusController);
        assert!(parse_component("fan").is_err());
    }

    #[test]
    fn commands_run_end_to_end() {
        // Exercise each command body with small inputs.
        cmd_reliability(&args(&["--n", "4", "--m", "2", "--t", "1000"])).unwrap();
        cmd_availability(&args(&["--n", "4", "--m", "2", "--repair-hours", "3"])).unwrap();
        cmd_mttf(&args(&["--n", "4", "--m", "2"])).unwrap();
        cmd_degradation(&args(&["--n", "4", "--load", "0.5"])).unwrap();
        cmd_plan(&args(&[
            "--n",
            "4",
            "--target-nines",
            "7",
            "--repair-hours",
            "3",
        ]))
        .unwrap();
        cmd_simulate(&args(&[
            "--n",
            "3",
            "--load",
            "0.1",
            "--horizon-ms",
            "1",
            "--fail",
            "0:lfe:0.3",
        ]))
        .unwrap();
        // The BDR flag routes to the baseline simulator.
        cmd_simulate(&args(&[
            "--n",
            "3",
            "--load",
            "0.1",
            "--horizon-ms",
            "1",
            "--bdr",
            "--fail",
            "0:sru:0.3,1:lfe:0.5",
        ]))
        .unwrap();
    }

    #[test]
    fn simulate_validates_fail_specs() {
        assert!(cmd_simulate(&args(&["--n", "3", "--fail", "9:sru:1"])).is_err());
        assert!(cmd_simulate(&args(&["--n", "3", "--fail", "0:sru:99"])).is_err());
    }
}
