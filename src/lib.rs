//! # DRA — Dependable Router Architecture (reproduction)
//!
//! This meta-crate re-exports every subsystem of the reproduction of
//! Mandviwalla & Tzeng, *DRA: A Dependable Architecture for
//! High-Performance Routers* (ICPP 2004), so downstream users can depend
//! on a single crate:
//!
//! * [`linalg`] — dense/sparse linear algebra used by the Markov solvers.
//! * [`markov`] — continuous-time Markov chain construction and solution.
//! * [`des`] — discrete-event simulation kernel, RNG, and statistics.
//! * [`net`] — packets, protocol engines, FIBs, SAR, traffic generators.
//! * [`router`] — the BDR (basic distributed router) baseline simulator.
//! * [`core`] — the DRA architecture itself plus the paper's
//!   dependability and degradation analyses.
//! * [`campaign`] — the declarative, parallel, deterministic
//!   experiment-campaign engine and its JSON artifact pipeline.
//! * [`topo`] — the network-of-routers layer: topologies of
//!   co-simulated BDR/DRA routers, multi-hop flows, and composed
//!   network-reliability sweeps (`dra-topo/v1` artifacts).
//! * [`telemetry`] (behind the `telemetry` cargo feature) — the
//!   flight recorder, mergeable metrics registry, and sim-time trace
//!   export wired through all of the above.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use dra_campaign as campaign;
pub use dra_core as core;
pub use dra_des as des;
pub use dra_linalg as linalg;
pub use dra_markov as markov;
pub use dra_net as net;
pub use dra_router as router;
#[cfg(feature = "telemetry")]
pub use dra_telemetry as telemetry;
pub use dra_topo as topo;

/// Crate version of the reproduction, for reporting in experiment output.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
