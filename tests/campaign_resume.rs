//! Checkpoint/resume of the campaign engine: an interrupted campaign
//! (simulated with a cell budget) must resume by skipping finished
//! cells and produce an artifact byte-identical to an uninterrupted
//! run — the property that makes long campaigns safe to kill.

use dra::campaign::engine::{checkpoint_path, run, validate_artifact, RunOptions};
use dra::campaign::registry;
use dra::campaign::spec::CampaignSpec;
use std::fs;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dra-campaign-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn quick_spec() -> CampaignSpec {
    registry::build("faceoff", true).expect("built-in spec")
}

#[test]
fn interrupted_campaign_resumes_to_identical_artifact() {
    let dir = temp_dir("resume");
    let spec = quick_spec();
    assert!(spec.cells.len() >= 2, "need at least 2 cells to interrupt");

    // Reference: one uninterrupted run.
    let full_path = dir.join("full.json");
    let full = run(
        &spec,
        &RunOptions {
            workers: 1,
            out: Some(full_path.clone()),
            ..RunOptions::default()
        },
    )
    .expect("full run");
    assert_eq!(full.remaining, 0);
    let full_text = fs::read_to_string(&full_path).expect("full artifact");

    // Interrupted run: budget of 1 cell, then finish in a second call.
    let part_path = dir.join("resumed.json");
    let first = run(
        &spec,
        &RunOptions {
            workers: 1,
            out: Some(part_path.clone()),
            cell_budget: Some(1),
            ..RunOptions::default()
        },
    )
    .expect("budgeted run");
    assert_eq!(first.completed, 1);
    assert_eq!(first.remaining, spec.cells.len() - 1);
    assert!(first.artifact.is_none(), "incomplete run must not emit");
    assert!(!part_path.exists());
    assert!(
        checkpoint_path(&part_path).exists(),
        "finished cells must be checkpointed"
    );

    let second = run(
        &spec,
        &RunOptions {
            workers: 1,
            out: Some(part_path.clone()),
            ..RunOptions::default()
        },
    )
    .expect("resumed run");
    assert_eq!(second.resumed, 1, "checkpointed cell must be skipped");
    assert_eq!(second.completed, spec.cells.len() - 1);
    assert_eq!(second.remaining, 0);
    assert!(
        !checkpoint_path(&part_path).exists(),
        "checkpoint must be removed once the artifact lands"
    );

    let resumed_text = fs::read_to_string(&part_path).expect("resumed artifact");
    assert_eq!(
        resumed_text, full_text,
        "resumed artifact differs from an uninterrupted run"
    );
    let (cells, errors) = validate_artifact(&resumed_text).expect("valid artifact");
    assert_eq!((cells, errors), (spec.cells.len(), 0));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_checkpoint_from_a_different_spec_is_ignored() {
    let dir = temp_dir("stale");
    let out = dir.join("artifact.json");

    // Checkpoint a cell of the fig8 spec...
    let other = registry::build("fig8", true).expect("built-in spec");
    let first = run(
        &other,
        &RunOptions {
            workers: 1,
            out: Some(out.clone()),
            cell_budget: Some(1),
            ..RunOptions::default()
        },
    )
    .expect("budgeted run");
    assert_eq!(first.completed, 1);
    assert!(checkpoint_path(&out).exists());

    // ...then run the faceoff spec at the same path: the digest
    // mismatch must force a clean start, not splice foreign cells.
    let spec = quick_spec();
    let outcome = run(
        &spec,
        &RunOptions {
            workers: 1,
            out: Some(out.clone()),
            ..RunOptions::default()
        },
    )
    .expect("run over stale checkpoint");
    assert_eq!(outcome.resumed, 0, "stale checkpoint must not resume");
    assert_eq!(outcome.completed, spec.cells.len());
    let text = fs::read_to_string(&out).expect("artifact");
    let (cells, errors) = validate_artifact(&text).expect("valid artifact");
    assert_eq!((cells, errors), (spec.cells.len(), 0));

    let _ = fs::remove_dir_all(&dir);
}
