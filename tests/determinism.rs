//! Cross-run reproducibility of the full stack: identical seeds must
//! give bit-identical results through traffic generation, fault
//! injection, CSMA/CD backoff, fabric scheduling, and Monte Carlo —
//! the property every comparison experiment in EXPERIMENTS.md rests on.

use dra::campaign::engine::{run, RunOptions};
use dra::campaign::registry;
use dra::core::montecarlo::{inflated_rates, run_dra_mc, McConfig, McMode, RepairDist};
use dra::core::sim::{DraConfig, DraRouter};
use dra::router::bdr::{BdrConfig, BdrRouter};
use dra::router::faults::{FaultGranularity, FaultInjector};

fn fingerprint_bdr(seed: u64) -> (u64, u64, u64, u64) {
    let mut cfg = BdrConfig {
        n_lcs: 5,
        load: 0.3,
        ..BdrConfig::default()
    };
    // Stochastic faults exercise the RNG interleaving too.
    cfg.faults = Some(FaultInjector {
        rates: inflated_rates(1000.0),
        repair_time_h: 3.0,
        granularity: FaultGranularity::WholeLc,
    });
    cfg.fault_delay_scale = 1e-3 / 50.0;
    let mut sim = BdrRouter::simulation(cfg, seed);
    sim.run_until(10e-3);
    let m = &sim.model().metrics;
    (
        m.total_offered_bytes(),
        m.total_delivered_bytes(),
        m.lcs.iter().map(|l| l.total_drops()).sum(),
        sim.events_processed(),
    )
}

fn fingerprint_dra(seed: u64) -> (u64, u64, u64, u64, u64) {
    let mut cfg = DraConfig {
        router: BdrConfig {
            n_lcs: 5,
            load: 0.3,
            ..BdrConfig::default()
        },
        ..Default::default()
    };
    cfg.router.faults = Some(FaultInjector {
        rates: inflated_rates(1000.0),
        repair_time_h: 3.0,
        granularity: FaultGranularity::PerComponent,
    });
    cfg.router.fault_delay_scale = 1e-3 / 50.0;
    let mut sim = DraRouter::simulation(cfg, seed);
    sim.run_until(10e-3);
    let m = &sim.model().metrics;
    (
        m.total_offered_bytes(),
        m.total_delivered_bytes(),
        m.eib_packets,
        m.eib_collisions,
        sim.events_processed(),
    )
}

#[test]
fn bdr_with_stochastic_faults_is_reproducible() {
    assert_eq!(fingerprint_bdr(123), fingerprint_bdr(123));
    assert_ne!(fingerprint_bdr(123), fingerprint_bdr(124));
}

#[test]
fn dra_with_stochastic_faults_is_reproducible() {
    assert_eq!(fingerprint_dra(9), fingerprint_dra(9));
    assert_ne!(fingerprint_dra(9), fingerprint_dra(10));
}

/// The campaign engine's core contract: the artifact is a pure
/// function of the spec, independent of the worker count. Sampled
/// fault schedules, windowed measurement, and the JSON render all sit
/// on this path.
#[test]
fn campaign_artifact_is_byte_identical_across_worker_counts() {
    let spec = registry::build("faceoff", true).expect("built-in spec");
    let render = |workers: usize| {
        let outcome = run(
            &spec,
            &RunOptions {
                workers,
                ..RunOptions::default()
            },
        )
        .expect("campaign runs");
        outcome
            .artifact
            .expect("campaign completed")
            .to_string_pretty()
    };
    let serial = render(1);
    let parallel = render(4);
    assert_eq!(serial, parallel, "artifact depends on worker count");
    // And reruns reproduce exactly (no hidden global state).
    assert_eq!(serial, render(1));
}

#[test]
fn monte_carlo_is_reproducible_across_modes() {
    let cfg = McConfig {
        n: 5,
        m: 3,
        rates: inflated_rates(1000.0),
        replications: 2_000,
        seed: 31,
    };
    for mode in [
        McMode::Reliability { horizon_h: 40.0 },
        McMode::Availability {
            horizon_h: 500.0,
            mu: 1.0 / 3.0,
            repair: RepairDist::Exponential,
        },
        McMode::Availability {
            horizon_h: 500.0,
            mu: 1.0 / 3.0,
            repair: RepairDist::Deterministic,
        },
    ] {
        let a = run_dra_mc(&cfg, mode);
        let b = run_dra_mc(&cfg, mode);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.ci_half, b.ci_half);
    }
}
