//! A readable walkthrough of the §4 EIB protocol, exercising the
//! control packets, the CSMA/CD channel, the TDM arbiter, and the
//! slot-level data lines together — the full life of two concurrent
//! coverage streams, as the paper narrates it.

use dra::core::eib::control::{CommType, ControlPacket, CsmaChannel, TxResult};
use dra::core::eib::datalines::{DataLines, Transfer};
use dra::core::eib::promised_bandwidth;
use dra::net::addr::Ipv4Addr;
use dra::net::protocol::ProtocolKind;
use dra::router::components::ComponentKind;

/// Helper: push one control packet through the (idle) channel.
fn send(ch: &mut CsmaChannel, at: f64) -> f64 {
    match ch.attempt(at) {
        TxResult::Started { tx, done_at } => {
            assert!(ch.complete(tx), "uncontended control tx must succeed");
            done_at
        }
        other => panic!("channel should be idle at {at}: {other:?}"),
    }
}

#[test]
fn forward_path_stream_lifecycle() {
    // Scenario: LC0's SRU failed; LC2 will cover. LC3's LFE failed and
    // outsources lookups. The control lines arbitrate everything.
    let mut control = CsmaChannel::new(1e9, 50e-9);
    let mut data = DataLines::new(4, 40e9, 9000);
    let mut t = 0.0;

    // --- LP setup for LC0's stream (forward path) ---------------------
    let req = ControlPacket::req_d(0, 1.5e9, ProtocolKind::Ethernet, ComponentKind::Sru);
    assert_eq!(req.comm, CommType::ReqD);
    assert_eq!(req.rec, None, "REQ_D is a broadcast solicitation");
    assert_eq!(req.proc.faulty_component, Some(ComponentKind::Sru));
    t = send(&mut control, t);

    let rep = ControlPacket::rep_d(2, 0);
    assert_eq!((rep.init, rep.rec), (2, Some(0)));
    t = send(&mut control, t);

    let id0 = data.establish(0);
    assert_eq!(id0, 1, "first LP takes ID 1");

    // --- A remote lookup interleaves on the control lines -------------
    let ql = ControlPacket::req_l(3, Ipv4Addr::from_octets(10, 1, 0, 9));
    assert_eq!(ql.comm, CommType::ReqL);
    t = send(&mut control, t);
    let rl = ControlPacket::rep_l(1, 3, 1);
    assert_eq!(rl.proc.lookup_result, Some(1));
    t = send(&mut control, t);

    // --- A second data stream joins (LC1's PDLU covered by LC2) -------
    send(&mut control, t); // its REQ_D
    let id1 = data.establish(1);
    assert_eq!(id1, 2);

    // --- Data flows, round-robin shared -------------------------------
    for tag in 0..30 {
        data.enqueue(0, Transfer { tag, bytes: 1500 });
        data.enqueue(
            1,
            Transfer {
                tag: 100 + tag,
                bytes: 1500,
            },
        );
    }
    let completions = data.run_until(60.0 * 1500.0 * 8.0 / 40e9 + 1e-9);
    assert_eq!(completions.len(), 60, "both streams fully served");
    let lc0_bytes = data.moved_bytes(0);
    let lc1_bytes = data.moved_bytes(1);
    assert_eq!(lc0_bytes, lc1_bytes, "equal requests, equal turns");

    // --- Release: REL_D announces the ID; survivors compact -----------
    let rel = ControlPacket::rel_d(0, id0);
    assert_eq!(rel.proc.released_id, Some(id0));
    data.release(0);
    assert!(!data.has_lp(0));
    assert!(data.has_lp(1));

    // The bus keeps serving the survivor at full rate.
    data.enqueue(
        1,
        Transfer {
            tag: 999,
            bytes: 3000,
        },
    );
    let done = data.run_until(data.now() + 1e-5);
    assert_eq!(done.len(), 1);
    assert_eq!(control.collisions(), 0, "this walkthrough stayed orderly");
}

#[test]
fn oversubscribed_setup_scales_promises() {
    // Three faulty cards request 6+6+6 Gbps on a 12 Gbps data bus: the
    // processing tier's data-rate parameter drives the B_prom rule.
    let requests = [6e9, 6e9, 6e9];
    let promises = promised_bandwidth(&requests, 12e9);
    for p in &promises {
        assert!((p - 4e9).abs() < 1.0);
    }
    // The paper: "all the requesting LC's scale back their
    // transmission rates accordingly by dropping packets".
    let total: f64 = promises.iter().sum();
    assert!(total <= 12e9 + 1.0);
}

#[test]
fn collision_storm_resolves_with_backoff() {
    // Many REP_D candidates answering the same REQ_D can collide (the
    // paper handles this with CSMA/CD). Simulate five stations racing
    // and verify the channel eventually carries all five replies.
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let mut ch = CsmaChannel::new(1e9, 50e-9);
    let mut rng = SmallRng::seed_from_u64(5);
    // Station state: (next attempt time, collision count, done?).
    let mut stations: Vec<(f64, u32, bool)> = (0..5).map(|i| (i as f64 * 1e-9, 0, false)).collect();
    let mut guard = 0;
    while stations.iter().any(|&(_, _, done)| !done) {
        guard += 1;
        assert!(guard < 10_000, "collision storm never resolved");
        // Earliest pending station attempts.
        let (idx, &(at, attempts, _)) = stations
            .iter()
            .enumerate()
            .filter(|(_, &(_, _, done))| !done)
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
            .unwrap();
        match ch.attempt(at) {
            TxResult::Started { tx, done_at } => {
                if ch.complete(tx) {
                    stations[idx].2 = true;
                } else {
                    let backoff = ch.backoff_delay(&mut rng, attempts + 1);
                    stations[idx] = (done_at + backoff, attempts + 1, false);
                }
            }
            TxResult::Deferred { until } => {
                stations[idx].0 = until + 1e-10;
            }
            TxResult::Collided { jam_until } => {
                let backoff = ch.backoff_delay(&mut rng, attempts + 1);
                stations[idx] = (jam_until + backoff + 1e-10, attempts + 1, false);
            }
        }
    }
    assert!(ch.collisions() > 0, "the race should produce collisions");
}
