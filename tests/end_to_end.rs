//! End-to-end exercises through the meta-crate `dra` public API:
//! substrate interop (FIB + SAR + fabric + DES) and full-router
//! scenarios a downstream user would write.

use dra::net::addr::{Ipv4Addr, Ipv4Prefix};
use dra::net::fib::{Fib, StrideFib, TrieFib};
use dra::net::packet::{Packet, PacketId};
use dra::net::protocol::ProtocolKind;
use dra::net::sar::{segment, Reassembler};
use dra::router::fabric::Crossbar;

#[test]
fn cells_survive_a_trip_through_the_fabric() {
    // A packet segmented at LC0, switched cell by cell, reassembled at
    // LC2 — the whole ingress-to-egress data path minus timing.
    let packet = Packet::new(
        PacketId(77),
        Ipv4Addr::from_octets(10, 0, 0, 1),
        Ipv4Addr::from_octets(10, 2, 0, 9),
        1400,
        ProtocolKind::Pos,
        0.0,
    );
    let cells = segment(&packet, 0, 2);
    let mut fabric = Crossbar::new(4, 256, 2, 5, 4);
    for cell in cells {
        fabric.enqueue(cell).expect("VOQ has room");
    }
    let mut reassembler = Reassembler::new();
    let mut completed = None;
    while !fabric.is_empty() {
        for cell in fabric.schedule_slot() {
            assert_eq!(cell.dst_lc, 2);
            if let Ok(Some(done)) = reassembler.push(cell, 0.0) {
                completed = Some(done);
            }
        }
    }
    assert_eq!(completed, Some((PacketId(77), 1400)));
    assert_eq!(reassembler.in_flight(), 0);
}

#[test]
fn fib_implementations_agree_under_the_router_route_layout() {
    // The routers install 10.<lc>.0.0/16 per card; both production
    // FIBs must agree with each other on that layout plus a default
    // route and host overrides.
    let mut trie = TrieFib::new();
    let mut stride = StrideFib::new();
    for lc in 0..12u16 {
        let p = Ipv4Prefix::new(Ipv4Addr::from_octets(10, lc as u8, 0, 0), 16);
        trie.insert(p, lc);
        stride.insert(p, lc);
    }
    trie.insert(Ipv4Prefix::default_route(), 99);
    stride.insert(Ipv4Prefix::default_route(), 99);
    trie.insert("10.3.0.7/32".parse().unwrap(), 55);
    stride.insert("10.3.0.7/32".parse().unwrap(), 55);

    let probes = [
        "10.0.0.1",
        "10.3.0.7",
        "10.3.0.8",
        "10.11.255.255",
        "192.168.1.1",
    ];
    for p in probes {
        let addr: Ipv4Addr = p.parse().unwrap();
        assert_eq!(trie.lookup(addr), stride.lookup(addr), "disagree on {p}");
    }
    assert_eq!(trie.lookup("10.3.0.7".parse().unwrap()), Some(55));
    assert_eq!(trie.lookup("192.168.1.1".parse().unwrap()), Some(99));
}

#[test]
fn protocol_engines_expose_the_pdlu_coverage_rule() {
    use dra::net::protocol::engine_for;
    for a in ProtocolKind::ALL {
        for b in ProtocolKind::ALL {
            assert_eq!(engine_for(a).can_cover(b), a == b);
        }
    }
}

#[test]
fn version_is_exported() {
    assert!(!dra::VERSION.is_empty());
}

mod full_router {
    use dra::core::sim::{DraConfig, DraRouter};
    use dra::router::bdr::BdrConfig;
    use dra::router::components::ComponentKind;

    /// A rolling-failure scenario: components fail one by one across
    /// cards, each repaired before the next fails; DRA must deliver
    /// throughout.
    #[test]
    fn rolling_failures_never_interrupt_service() {
        let mut sim = DraRouter::simulation(
            DraConfig {
                router: BdrConfig {
                    n_lcs: 5,
                    load: 0.15,
                    ..BdrConfig::default()
                },
                ..Default::default()
            },
            31,
        );
        let kinds = [
            ComponentKind::Lfe,
            ComponentKind::Sru,
            ComponentKind::Pdlu,
            ComponentKind::Lfe,
        ];
        let mut t = 0.5e-3;
        for (lc, kind) in kinds.into_iter().enumerate() {
            sim.run_until(t);
            let now = sim.now();
            sim.model_mut().fail_component_now(lc as u16, kind, now);
            t += 0.5e-3;
            sim.run_until(t);
            let now = sim.now();
            sim.model_mut().repair_lc_now(lc as u16, now);
            t += 0.2e-3;
        }
        sim.run_until(t + 1e-3);
        let m = &sim.model().metrics;
        assert!(
            m.byte_delivery_ratio() > 0.99,
            "rolling failures should be absorbed: {}",
            m.byte_delivery_ratio()
        );
        let covered: u64 = m.lcs.iter().map(|l| l.covered_packets).sum();
        assert!(covered > 0, "coverage must actually engage");
    }

    /// Two simultaneous failures of different kinds on different cards.
    #[test]
    fn concurrent_failures_of_different_kinds() {
        let mut sim = DraRouter::simulation(
            DraConfig {
                router: BdrConfig {
                    n_lcs: 6,
                    load: 0.2,
                    ..BdrConfig::default()
                },
                ..Default::default()
            },
            37,
        );
        sim.run_until(1e-3);
        let now = sim.now();
        sim.model_mut()
            .fail_component_now(0, ComponentKind::Lfe, now);
        sim.model_mut()
            .fail_component_now(3, ComponentKind::Sru, now);
        sim.run_until(3e-3);
        let m = &sim.model().metrics;
        assert!(m.lcs[0].covered_packets > 0);
        assert!(m.lcs[3].covered_packets > 0);
        assert!(m.byte_delivery_ratio() > 0.98);
    }
}
