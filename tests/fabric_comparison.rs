//! iSLIP crossbar vs the idealized output-queued reference — the
//! classic switching results, verified on this implementation:
//! both sustain full throughput under uniform saturation, and the
//! VOQ structure avoids the head-of-line collapse a single-FIFO
//! input-queued switch would suffer.

use dra::net::packet::PacketId;
use dra::net::sar::Cell;
use dra::router::fabric::{Crossbar, OutputQueuedFabric};

fn cell(src: u16, dst: u16, id: u64) -> Cell {
    Cell {
        src_lc: src,
        dst_lc: dst,
        packet: PacketId(id),
        seq: 0,
        total: 1,
        payload_bytes: 48,
    }
}

/// Deterministic uniform workload: every input sends `per_pair` cells
/// to every output.
fn load_uniform(n: u16, per_pair: u64) -> Vec<Cell> {
    let mut v = Vec::new();
    for i in 0..n {
        for o in 0..n {
            for k in 0..per_pair {
                v.push(cell(i, o, ((i as u64) << 40) | ((o as u64) << 20) | k));
            }
        }
    }
    v
}

#[test]
fn islip_matches_oq_throughput_under_uniform_saturation() {
    let n = 8u16;
    let cells = load_uniform(n, 64);
    let total = cells.len();

    let mut xb = Crossbar::new(n as usize, 1 << 16, 2, 1, 1);
    for c in cells.clone() {
        xb.enqueue(c).unwrap();
    }
    let mut oq = OutputQueuedFabric::new(n as usize, 1 << 16);
    for c in cells {
        oq.enqueue(c).unwrap();
    }

    let mut islip_slots = 0;
    while !xb.is_empty() {
        xb.schedule_slot();
        islip_slots += 1;
        assert!(islip_slots < 10 * total, "iSLIP failed to drain");
    }
    let mut oq_slots = 0;
    while !oq.is_empty() {
        oq.schedule_slot();
        oq_slots += 1;
    }
    // OQ drains in exactly total/n slots; desynchronized iSLIP should
    // be within ~15% of that optimum on uniform traffic.
    let optimum = total / n as usize;
    assert_eq!(oq_slots, optimum);
    assert!(
        islip_slots <= optimum * 115 / 100,
        "iSLIP used {islip_slots} slots vs OQ optimum {optimum}"
    );
}

#[test]
fn contended_input_stays_fully_utilized_and_fair() {
    // Input 0 has traffic for the hot output 1 (contended with input
    // 1) and the idle output 2. The input line moves one cell per
    // slot; iSLIP must keep it fully utilized and split its service
    // fairly between the two outputs — no starvation of either (a
    // single-FIFO input queue would stall entirely whenever its head
    // loses the race for output 1).
    let mut xb = Crossbar::new(3, 1 << 10, 2, 1, 1);
    for k in 0..50 {
        xb.enqueue(cell(0, 1, k)).unwrap(); // contends with input 1
        xb.enqueue(cell(1, 1, 100 + k)).unwrap();
        xb.enqueue(cell(0, 2, 200 + k)).unwrap(); // uncontended
    }
    let mut from0_to1 = 0;
    let mut from0_to2 = 0;
    let slots = 60;
    for _ in 0..slots {
        for c in xb.schedule_slot() {
            if c.src_lc == 0 {
                match c.dst_lc {
                    1 => from0_to1 += 1,
                    2 => from0_to2 += 1,
                    _ => unreachable!(),
                }
            }
        }
    }
    let served = from0_to1 + from0_to2;
    assert!(
        served >= slots * 95 / 100,
        "input 0 should stay ~fully utilized: {served}/{slots}"
    );
    // Fair split between its two destinations until one queue drains.
    assert!(
        from0_to2 >= 25 && from0_to1 >= 25,
        "service split starved a destination: to1={from0_to1} to2={from0_to2}"
    );
}

#[test]
fn oq_queue_depth_exceeds_voq_under_hotspot() {
    // Everyone blasts output 0: the OQ fabric concentrates the backlog
    // in one queue (needing deep egress buffers), while the crossbar
    // spreads it across the input VOQs — the buffering trade-off that
    // motivates VOQ designs.
    let n = 4u16;
    let mut xb = Crossbar::new(n as usize, 1 << 12, 2, 1, 1);
    let mut oq = OutputQueuedFabric::new(n as usize, 1 << 12);
    for i in 0..n {
        for k in 0..100 {
            xb.enqueue(cell(i, 0, (i as u64) << 20 | k)).unwrap();
            oq.enqueue(cell(i, 0, (i as u64) << 20 | k)).unwrap();
        }
    }
    for _ in 0..50 {
        xb.schedule_slot();
        oq.schedule_slot();
    }
    let max_voq = (0..n as usize).map(|i| xb.voq_len(i, 0)).max().unwrap();
    assert!(
        oq.queue_len(0) > max_voq,
        "hotspot backlog should concentrate in the OQ: oq={} voq_max={max_voq}",
        oq.queue_len(0)
    );
    // Both serve the hotspot at the same rate: one cell per slot.
    assert_eq!(oq.queued_cells(), xb.queued_cells());
}
