//! The bitmask arbiter's determinism contract, exercised head to head:
//! `Crossbar` (u64 word bitmaps + cell arena) must transfer the
//! *identical* cell sequence and leave *identical* round-robin pointer
//! state as `ScalarCrossbar` (the retained O(n²) reference) for every
//! port count — including non-multiples of 64, where the circular
//! word-scan has to stitch a wrap across word boundaries.
//!
//! Each proptest case derives a random request matrix, random
//! grant/accept pointer states, and an iteration count from a seed,
//! runs both fabrics slot by slot until drained, and compares every
//! transferred cell and both pointer arrays after every slot.

use dra::net::packet::PacketId;
use dra::net::sar::Cell;
use dra::router::fabric::Crossbar;
use dra::router::fabric_ref::ScalarCrossbar;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn cell(src: u16, dst: u16, id: u64, seq: u16, total: u16) -> Cell {
    Cell {
        src_lc: src,
        dst_lc: dst,
        packet: PacketId(id),
        seq,
        total,
        payload_bytes: 48,
    }
}

/// Drive both arbiters over the same randomized workload and compare
/// every observable after every slot.
fn assert_equivalent(n: usize, iterations: usize, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let voq_cap = 8;
    let mut bitmask = Crossbar::new(n, voq_cap, iterations, 1, 1);
    let mut scalar = ScalarCrossbar::new(n, voq_cap, iterations);

    // Random starting pointer state — equivalence must hold from any
    // reachable (indeed any legal) pointer configuration, not just the
    // all-zeros reset.
    let grant: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
    let accept: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
    bitmask.set_pointers(&grant, &accept);
    scalar.set_pointers(&grant, &accept);

    // Random request matrix: each (input, output) VOQ gets 0..=3 cells
    // with probability that leaves the matrix a mix of dense rows,
    // sparse rows, and empty rows. Cells carry unique ids so any
    // reordering is caught, and identical enqueue order feeds both.
    let mut id = 0u64;
    for i in 0..n as u16 {
        for o in 0..n as u16 {
            if rng.gen_range(0..100) < 35 {
                let burst = rng.gen_range(1..=3u16);
                for s in 0..burst {
                    let c = cell(i, o, id, s, burst);
                    id += 1;
                    let a = bitmask.enqueue(c);
                    let b = scalar.enqueue(c);
                    assert_eq!(a.is_ok(), b.is_ok(), "admission must agree");
                }
            }
        }
    }
    assert_eq!(bitmask.queued_cells(), scalar.queued_cells());

    let mut slots = 0;
    while !scalar.is_empty() {
        let got: Vec<Cell> = bitmask.schedule_slot().to_vec();
        let want: Vec<Cell> = scalar.schedule_slot().to_vec();
        assert_eq!(
            got, want,
            "slot {slots}: transferred cells diverge (n={n}, iters={iterations}, seed={seed})"
        );
        assert_eq!(
            bitmask.pointers(),
            scalar.pointers(),
            "slot {slots}: pointer state diverges (n={n}, iters={iterations}, seed={seed})"
        );
        assert_eq!(bitmask.queued_cells(), scalar.queued_cells());
        slots += 1;
        assert!(slots <= 16 * n * voq_cap, "drain did not terminate");
    }
    assert!(bitmask.is_empty(), "bitmask retains cells after drain");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single-word regime (n ≤ 64): the rotate + trailing_zeros fast
    /// path, at a tiny and a full word-width port count.
    #[test]
    fn equivalent_small_ports(seed in any::<u64>(), iters in 1usize..=4) {
        assert_equivalent(3, iters, seed);
        assert_equivalent(8, iters, seed);
        assert_equivalent(64, iters, seed);
    }

    /// Multi-word regime with a ragged tail word (n = 65): the wrap
    /// in the circular scan crosses a word boundary and the tail mask
    /// must keep phantom bits 65..128 out of every bitmap.
    #[test]
    fn equivalent_non_word_multiple(seed in any::<u64>(), iters in 1usize..=4) {
        assert_equivalent(65, iters, seed);
    }

    /// Full four-word bitmaps (n = 256), the port count the scaling
    /// sweep benchmarks.
    #[test]
    fn equivalent_256_ports(seed in any::<u64>(), iters in 1usize..=2) {
        assert_equivalent(256, iters, seed);
    }
}

/// Beyond random sampling: the saturated-uniform workload where iSLIP
/// pointer desynchronization does the heavy lifting, over enough slots
/// for the pointers to cycle their full range several times.
#[test]
fn equivalent_under_uniform_saturation() {
    for n in [4usize, 63, 64, 65] {
        let mut bitmask = Crossbar::new(n, 64, 1, 1, 1);
        let mut scalar = ScalarCrossbar::new(n, 64, 1);
        let mut id = 0u64;
        for i in 0..n as u16 {
            for o in 0..n as u16 {
                for _ in 0..4 {
                    let c = cell(i, o, id, 0, 1);
                    id += 1;
                    bitmask.enqueue(c).unwrap();
                    scalar.enqueue(c).unwrap();
                }
            }
        }
        let mut slot = 0;
        while !scalar.is_empty() {
            assert_eq!(
                bitmask.schedule_slot(),
                scalar.schedule_slot(),
                "n={n} slot={slot}"
            );
            assert_eq!(bitmask.pointers(), scalar.pointers(), "n={n} slot={slot}");
            slot += 1;
        }
        assert!(bitmask.is_empty());
    }
}
