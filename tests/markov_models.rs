//! E1/E5 integration: the paper's Markov models exercised through the
//! whole stack — built in `dra-core`, solved by `dra-markov` on
//! `dra-linalg`, and cross-validated by three independent methods
//! (uniformization, RK45, Monte Carlo).

use dra::core::analysis::reliability::{
    dra_model, reliability_curve, DraParams, TprimeSemantics, ZoneInterBound,
};
use dra::core::montecarlo::{inflated_rates, run_dra_mc, McConfig, McMode};
use dra::markov::steady::{steady_state, SteadyMethod};
use dra::markov::transient::{transient, transient_rk45, OdeOptions, TransientOptions};

#[test]
fn model_generator_is_conservative_across_the_sweep() {
    for n in 3..=9 {
        for m in 2..=n.min(8) {
            let model = dra_model(&DraParams::new(n, m));
            for s in model.chain.generator().row_sums() {
                assert!(s.abs() < 1e-15, "N={n} M={m}: row sum {s}");
            }
            assert_eq!(
                model.chain.absorbing_states(),
                vec![model.failed],
                "N={n} M={m}: F must be the only absorbing state"
            );
        }
    }
}

#[test]
fn uniformization_and_rk45_agree_on_the_dra_model() {
    // Moderate horizon keeps RK45 affordable; both methods share no
    // code beyond the generator.
    let model = dra_model(&DraParams::new(5, 3));
    let pi0 = model.chain.point_mass(model.start).unwrap();
    let t = 2_000.0;
    let a = transient(&model.chain, &pi0, t, TransientOptions::default()).unwrap();
    let b = transient_rk45(&model.chain, &pi0, t, OdeOptions::default()).unwrap();
    for i in 0..a.len() {
        assert!(
            (a[i] - b[i]).abs() < 1e-7,
            "state {i}: uniformization {} vs RK45 {}",
            a[i],
            b[i]
        );
    }
}

#[test]
fn steady_state_methods_agree_on_the_availability_model() {
    let model = dra_model(&DraParams::with_repair(6, 3, 1.0 / 3.0));
    let lu = steady_state(&model.chain, SteadyMethod::DirectLu).unwrap();
    let gs = steady_state(&model.chain, SteadyMethod::GaussSeidel).unwrap();
    let pw = steady_state(&model.chain, SteadyMethod::Power).unwrap();
    for i in 0..lu.len() {
        assert!((lu[i] - gs[i]).abs() < 1e-9, "GS differs at {i}");
        assert!((lu[i] - pw[i]).abs() < 1e-7, "power differs at {i}");
    }
}

#[test]
fn monte_carlo_confirms_the_strict_markov_model() {
    let rates = inflated_rates(1000.0);
    let cfg = McConfig {
        n: 4,
        m: 2,
        rates,
        replications: 20_000,
        seed: 0x1A7E,
    };
    let mc = run_dra_mc(&cfg, McMode::Reliability { horizon_h: 30.0 });
    let params = DraParams {
        rates,
        tprime: TprimeSemantics::Strict,
        ..DraParams::new(4, 2)
    };
    let model = dra_model(&params);
    let markov = reliability_curve(&model.chain, model.start, model.failed, &[30.0])[0];
    assert!(
        (mc.mean - markov).abs() < 3.0 * mc.ci_half.max(0.005),
        "MC {} ± {} vs Markov {markov}",
        mc.mean,
        mc.ci_half
    );
}

#[test]
fn literal_semantics_dominate_strict() {
    // Literal T' forgets LC_UA failures after a bus failure, so it can
    // only look better.
    for (n, m) in [(3, 2), (6, 3), (9, 4)] {
        let lit = dra_model(&DraParams::new(n, m));
        let strict = dra_model(&DraParams {
            tprime: TprimeSemantics::Strict,
            ..DraParams::new(n, m)
        });
        for &t in &[20_000.0, 60_000.0] {
            let rl = reliability_curve(&lit.chain, lit.start, lit.failed, &[t])[0];
            let rs = reliability_curve(&strict.chain, strict.start, strict.failed, &[t])[0];
            assert!(rl >= rs - 1e-12, "N={n} M={m} t={t}: {rl} < {rs}");
        }
    }
}

#[test]
fn zone_bound_orderings_hold_across_configs() {
    for (n, m) in [(3, 2), (5, 2), (9, 4)] {
        let r_of = |bound| {
            let model = dra_model(&DraParams {
                bound,
                ..DraParams::new(n, m)
            });
            reliability_curve(&model.chain, model.start, model.failed, &[50_000.0])[0]
        };
        let tof = r_of(ZoneInterBound::ToF);
        let ext = r_of(ZoneInterBound::Extended);
        let sat = r_of(ZoneInterBound::Saturate);
        assert!(tof <= ext + 1e-12 && ext <= sat + 1e-12, "N={n} M={m}");
    }
}
