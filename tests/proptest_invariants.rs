//! Cross-crate property tests: invariants that must hold over the
//! whole parameter space the public API accepts, not just the paper's
//! grid points.

use dra::core::analysis::availability::{bdr_availability, dra_availability};
use dra::core::analysis::degradation::{b_faulty_fraction, DegradationParams};
use dra::core::analysis::nines::{format_nines, nines};
use dra::core::analysis::reliability::{dra_model, reliability_curve, DraParams};
use dra::router::components::FailureRates;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// R(t) is a survival function for every (N, M): starts at 1,
    /// never increases, stays in [0, 1].
    #[test]
    fn reliability_is_a_survival_function(n in 3usize..8, m_off in 0usize..5) {
        let m = 2 + m_off.min(n - 2);
        let model = dra_model(&DraParams::new(n, m));
        let times: Vec<f64> = (0..=10).map(|k| k as f64 * 8_000.0).collect();
        let r = reliability_curve(&model.chain, model.start, model.failed, &times);
        prop_assert_eq!(r[0], 1.0);
        for w in r.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&w[1]));
        }
    }

    /// DRA availability beats BDR and is monotone in the repair rate,
    /// across arbitrary (N, M, mu).
    #[test]
    fn availability_dominance_and_monotonicity(
        n in 3usize..8,
        m_off in 0usize..5,
        mu_hours in 1.0..48.0f64,
    ) {
        let m = 2 + m_off.min(n - 2);
        let p = DraParams::new(n, m);
        let mu = 1.0 / mu_hours;
        let a = dra_availability(&p, mu);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!(a > bdr_availability(&FailureRates::PAPER, mu));
        // Faster repair can only help.
        let a_faster = dra_availability(&p, mu * 2.0);
        prop_assert!(a_faster >= a - 1e-12);
    }

    /// The nines decomposition reconstructs a value consistent with
    /// its input: k nines then digit d means the value lies in
    /// [0.9...9d, 0.9...9(d+1)).
    #[test]
    fn nines_brackets_the_value(a in 0.0f64..1.0) {
        let (k, d) = nines(a);
        prop_assume!(k != usize::MAX && k <= 12);
        let base: f64 = (0..k).fold(0.0, |acc, i| acc + 9.0 * 10f64.powi(-(i as i32 + 1)));
        let lo = base + d as f64 * 10f64.powi(-(k as i32 + 1));
        let hi = lo + 10f64.powi(-(k as i32 + 1));
        prop_assert!(
            a >= lo - 1e-12 && a < hi + 1e-12,
            "a={a}, k={k}, d={d}, bracket [{lo}, {hi})"
        );
        // The formatter never panics on valid input.
        let _ = format_nines(a);
    }

    /// Degradation: adding a healthy card never hurts, adding a faulty
    /// card never helps, for any load and bus size.
    #[test]
    fn degradation_monotone_in_n_and_x(
        n in 4usize..12,
        x in 1usize..3,
        load in 0.05f64..0.95,
        bus_gbps in 5.0f64..80.0,
    ) {
        let p = |n: usize| DegradationParams {
            n,
            c_lc_bps: 10e9,
            load,
            bus_capacity_bps: bus_gbps * 1e9,
        };
        let f_small = b_faulty_fraction(&p(n), x);
        let f_big = b_faulty_fraction(&p(n + 1), x);
        prop_assert!(f_big >= f_small - 1e-12, "more cards helped less");
        let f_more_failures = b_faulty_fraction(&p(n), x + 1);
        prop_assert!(f_more_failures <= f_small + 1e-12, "more failures helped");
    }
}
