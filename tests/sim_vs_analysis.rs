//! E5 integration: the packet-level simulators against the paper's
//! closed-form degradation analysis, and DRA against BDR under
//! identical conditions.
//!
//! Debug-build friendly: short horizons, a handful of scenarios; the
//! full sweep lives in the `repro-validate` binary.

use dra::core::analysis::degradation::{b_faulty_fraction, DegradationParams};
use dra::core::sim::{DraConfig, DraRouter};
use dra::router::bdr::{BdrConfig, BdrRouter};
use dra::router::components::ComponentKind;
use dra::router::metrics::RouterMetrics;

fn faulty_delivery_fraction(load: f64, x_faulty: usize, seed: u64) -> f64 {
    let warmup = 1e-3;
    let horizon = 4e-3;
    let mut sim = DraRouter::simulation(
        DraConfig {
            router: BdrConfig {
                n_lcs: 6,
                load,
                ..BdrConfig::default()
            },
            ..Default::default()
        },
        seed,
    );
    sim.run_until(warmup);
    let now = sim.now();
    for lc in 0..x_faulty as u16 {
        sim.model_mut()
            .fail_component_now(lc, ComponentKind::Sru, now);
    }
    let snap = |m: &RouterMetrics| {
        let off: u64 = (0..x_faulty).map(|i| m.lcs[i].offered_bytes).sum();
        let del: u64 = (0..x_faulty).map(|i| m.lcs[i].delivered_bytes).sum();
        (off, del)
    };
    let (o0, d0) = snap(&sim.model().metrics);
    sim.run_until(horizon);
    let (o1, d1) = snap(&sim.model().metrics);
    (d1 - d0) as f64 / (o1 - o0).max(1) as f64
}

#[test]
fn simulation_tracks_figure8_at_low_load() {
    // L = 15%, X = 2: analytic says 100%.
    let measured = faulty_delivery_fraction(0.15, 2, 11);
    assert!(measured > 0.97, "measured {measured}");
}

#[test]
fn simulation_tracks_figure8_at_the_binding_point() {
    // L = 70%, X = 5: analytic says 3/35 = 8.57%.
    let analytic = b_faulty_fraction(&DegradationParams::paper(0.7), 5);
    let measured = faulty_delivery_fraction(0.7, 5, 13);
    assert!(
        (measured - analytic).abs() < 0.03,
        "measured {measured} vs analytic {analytic}"
    );
}

#[test]
fn simulation_degrades_between_the_extremes() {
    // L = 50%, X = 4: analytic 50%.
    let analytic = b_faulty_fraction(&DegradationParams::paper(0.5), 4);
    let measured = faulty_delivery_fraction(0.5, 4, 17);
    assert!(
        (measured - analytic).abs() < 0.10,
        "measured {measured} vs analytic {analytic}"
    );
}

#[test]
fn bdr_delivers_nothing_on_faulty_cards() {
    let mut sim = BdrRouter::simulation(
        BdrConfig {
            n_lcs: 6,
            load: 0.3,
            ..BdrConfig::default()
        },
        19,
    );
    sim.run_until(1e-3);
    let now = sim.now();
    sim.model_mut()
        .fail_component_now(0, ComponentKind::Sru, now);
    let before = sim.model().metrics.lcs[0].delivered_packets;
    sim.run_until(3e-3);
    let after = sim.model().metrics.lcs[0].delivered_packets;
    // Anything still inside the pipeline at failure time may drain;
    // no *new* arrivals are served.
    assert!(
        after - before < 5,
        "BDR served {} packets on a dead card",
        after - before
    );
}

#[test]
fn dra_and_bdr_see_identical_traffic_with_the_same_seed() {
    // The comparison experiments rely on this: same seed, same offered
    // byte counts at every card — even when one architecture consumes
    // extra randomness for coverage (traffic rides dedicated per-LC
    // RNG streams).
    let seed = 23;
    let horizon = 3e-3;
    let base = BdrConfig {
        n_lcs: 4,
        load: 0.25,
        ..BdrConfig::default()
    };
    let mut bdr = BdrRouter::simulation(base.clone(), seed);
    bdr.run_until(1e-3);
    let now = bdr.now();
    bdr.model_mut()
        .fail_component_now(0, ComponentKind::Sru, now);
    bdr.run_until(horizon);

    let mut dra = DraRouter::simulation(
        DraConfig {
            router: base,
            ..Default::default()
        },
        seed,
    );
    dra.run_until(1e-3);
    let now = dra.now();
    dra.model_mut()
        .fail_component_now(0, ComponentKind::Sru, now);
    dra.run_until(horizon);

    for lc in 0..4 {
        assert_eq!(
            bdr.model().metrics.lcs[lc].offered_packets,
            dra.model().metrics.lcs[lc].offered_packets,
            "offered packets diverge at LC{lc}"
        );
        assert_eq!(
            bdr.model().metrics.lcs[lc].offered_bytes,
            dra.model().metrics.lcs[lc].offered_bytes,
            "offered bytes diverge at LC{lc}"
        );
    }
}

#[test]
fn healthy_dra_adds_no_overhead_vs_bdr() {
    let seed = 29;
    let horizon = 2e-3;
    let base = BdrConfig {
        n_lcs: 4,
        load: 0.3,
        ..BdrConfig::default()
    };
    let mut bdr = BdrRouter::simulation(base.clone(), seed);
    bdr.run_until(horizon);
    let mut dra = DraRouter::simulation(
        DraConfig {
            router: base,
            ..Default::default()
        },
        seed,
    );
    dra.run_until(horizon);
    let rb = bdr.model().metrics.byte_delivery_ratio();
    let rd = dra.model().metrics.byte_delivery_ratio();
    assert!((rb - rd).abs() < 0.01, "BDR {rb} vs DRA {rd}");
    assert_eq!(dra.model().metrics.eib_packets, 0);
}
