//! Stress and failure-injection edges: overload, tiny queues, fabric
//! plane exhaustion, EIB loss mid-coverage, and pathological
//! configurations. These guard the drop-accounting invariants that the
//! headline experiments rely on.

use dra::core::sim::{DraConfig, DraRouter, EibConfig};
use dra::router::bdr::{BdrConfig, BdrRouter};
use dra::router::components::ComponentKind;
use dra::router::metrics::{DropCause, RouterMetrics};

/// Offered packets must equal delivered + dropped + still-in-flight;
/// since in-flight is bounded by pipeline depth, the deficit must be
/// small once traffic stops being counted.
fn accounting_deficit(m: &RouterMetrics) -> i64 {
    let offered: i64 = m.lcs.iter().map(|l| l.offered_packets as i64).sum();
    let delivered: i64 = m.lcs.iter().map(|l| l.delivered_packets as i64).sum();
    let dropped: i64 = m.lcs.iter().map(|l| l.total_drops() as i64).sum();
    offered - delivered - dropped
}

#[test]
fn overload_drops_are_counted_not_lost() {
    // 95% load through a speedup-1 fabric with tiny VOQs: heavy
    // contention, but every offered packet must be accounted for.
    let mut cfg = BdrConfig {
        n_lcs: 4,
        load: 0.95,
        voq_capacity: 16,
        fabric_speedup: 1.0,
        ..BdrConfig::default()
    };
    cfg.reassembly_timeout_s = 0.5e-3;
    let mut sim = BdrRouter::simulation(cfg, 3);
    sim.run_until(3e-3);
    let m = &sim.model().metrics;
    let deficit = accounting_deficit(m);
    assert!(
        (0..=2_000).contains(&deficit),
        "accounting deficit {deficit} (in-flight should be bounded)"
    );
    assert!(
        m.total_drops(DropCause::VoqOverflow) + m.total_drops(DropCause::ReassemblyTimeout) > 0,
        "overload must surface as counted drops"
    );
}

#[test]
fn dra_overload_accounting_holds_too() {
    let cfg = DraConfig {
        router: BdrConfig {
            n_lcs: 4,
            load: 0.9,
            voq_capacity: 32,
            fabric_speedup: 1.0,
            ..BdrConfig::default()
        },
        eib: EibConfig::default(),
    };
    let mut sim = DraRouter::simulation(cfg, 5);
    sim.run_until(1e-3);
    let now = sim.now();
    sim.model_mut()
        .fail_component_now(0, ComponentKind::Sru, now);
    sim.run_until(3e-3);
    let m = &sim.model().metrics;
    // At 90% load the EIB's 2 ms backlog alone legitimately holds
    // thousands of packets; bound the deficit as a fraction of offered.
    let offered: i64 = m.lcs.iter().map(|l| l.offered_packets as i64).sum();
    let deficit = accounting_deficit(m);
    assert!(
        deficit >= 0 && deficit <= offered * 15 / 100,
        "accounting deficit {deficit} of {offered} offered"
    );
}

#[test]
fn fabric_plane_exhaustion_stops_switching_until_repair() {
    let mut sim = BdrRouter::simulation(
        BdrConfig {
            n_lcs: 4,
            load: 0.2,
            ..BdrConfig::default()
        },
        7,
    );
    sim.run_until(0.5e-3);
    for _ in 0..5 {
        sim.model_mut().fabric.fail_plane();
    }
    assert!(!sim.model().fabric.operational());
    sim.run_until(1.5e-3);
    let m = &sim.model().metrics;
    assert!(
        m.total_drops(DropCause::FabricDown) > 0,
        "new arrivals must be counted as fabric-down drops"
    );
    // Repair one plane: switching resumes.
    let delivered_before = sim.model().metrics.total_delivered_bytes();
    sim.model_mut().fabric.repair_plane();
    sim.run_until(3e-3);
    assert!(sim.model().metrics.total_delivered_bytes() > delivered_before);
}

#[test]
fn eib_failure_mid_coverage_downgrades_gracefully() {
    let mut sim = DraRouter::simulation(
        DraConfig {
            router: BdrConfig {
                n_lcs: 4,
                load: 0.2,
                ..BdrConfig::default()
            },
            ..Default::default()
        },
        11,
    );
    // Coverage active...
    sim.run_until(0.5e-3);
    let now = sim.now();
    sim.model_mut()
        .fail_component_now(0, ComponentKind::Sru, now);
    sim.run_until(1.5e-3);
    assert!(sim.model().metrics.eib_packets > 0);
    // ...then the bus dies under it.
    let now = sim.now();
    sim.model_mut().fail_eib_now(now);
    sim.run_until(3e-3);
    let m = &sim.model().metrics;
    assert!(
        m.lcs[0].drops(DropCause::IngressDown) > 0,
        "without the EIB the faulty card goes dark (T' regime)"
    );
    // Healthy cards are unaffected.
    assert!(m.lcs[1].delivered_packets > 0);
    let deficit = accounting_deficit(m);
    assert!((0..=2_000).contains(&deficit), "deficit {deficit}");
}

#[test]
fn every_card_faulty_still_accounts_cleanly() {
    // All four cards lose their SRUs: no healthy helper remains, so
    // the spare pool is zero and everything drops with a cause.
    let mut sim = DraRouter::simulation(
        DraConfig {
            router: BdrConfig {
                n_lcs: 4,
                load: 0.2,
                ..BdrConfig::default()
            },
            ..Default::default()
        },
        13,
    );
    sim.run_until(0.5e-3);
    let now = sim.now();
    for lc in 0..4 {
        sim.model_mut()
            .fail_component_now(lc, ComponentKind::Sru, now);
    }
    sim.run_until(2e-3);
    let m = &sim.model().metrics;
    let post_drops: u64 = m
        .lcs
        .iter()
        .map(|l| {
            l.drops(DropCause::NoCoverage)
                + l.drops(DropCause::EibOversubscribed)
                + l.drops(DropCause::IngressDown)
                + l.drops(DropCause::EgressDown)
        })
        .sum();
    assert!(post_drops > 0, "total failure must be visible in drops");
    let deficit = accounting_deficit(m);
    assert!((0..=2_000).contains(&deficit), "deficit {deficit}");
}

#[test]
fn minimum_router_size_works() {
    // N=3 is DRA's floor (LC_UA, LC_out, one LC_inter).
    let mut sim = DraRouter::simulation(
        DraConfig {
            router: BdrConfig {
                n_lcs: 3,
                load: 0.15,
                ..BdrConfig::default()
            },
            ..Default::default()
        },
        17,
    );
    sim.run_until(1e-3);
    let now = sim.now();
    sim.model_mut()
        .fail_component_now(0, ComponentKind::Lfe, now);
    sim.run_until(3e-3);
    let m = &sim.model().metrics;
    assert!(m.lcs[0].covered_packets > 0);
    assert!(m.byte_delivery_ratio() > 0.95);
}

#[test]
fn repeated_fail_repair_cycles_stay_consistent() {
    let mut sim = DraRouter::simulation(
        DraConfig {
            router: BdrConfig {
                n_lcs: 4,
                load: 0.2,
                ..BdrConfig::default()
            },
            ..Default::default()
        },
        19,
    );
    let mut t = 0.3e-3;
    for cycle in 0..8 {
        sim.run_until(t);
        let now = sim.now();
        let lc = (cycle % 4) as u16;
        sim.model_mut()
            .fail_component_now(lc, ComponentKind::Sru, now);
        t += 0.3e-3;
        sim.run_until(t);
        let now = sim.now();
        sim.model_mut().repair_lc_now(lc, now);
        t += 0.1e-3;
    }
    sim.run_until(t + 0.5e-3);
    let m = &sim.model().metrics;
    assert!(
        m.byte_delivery_ratio() > 0.98,
        "{}",
        m.byte_delivery_ratio()
    );
    let deficit = accounting_deficit(m);
    assert!((0..=2_000).contains(&deficit), "deficit {deficit}");
}
