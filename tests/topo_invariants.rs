//! Network-level property tests: packet conservation must hold on
//! every topology the generator produces, for both architectures,
//! healthy or faulted. Extends the `proptest_invariants.rs` pattern
//! one level up — from a single router to a network of them.

use dra::core::handle::ArchKind;
use dra::topo::engine::build_network;
use dra::topo::link::LinkConfig;
use dra::topo::spec::{FlowSpec, TopoCellSpec, TopoFaultSpec};
use dra::topo::topology::TopologyKind;
use proptest::prelude::*;

/// Run one cell replication to its horizon and return final stats.
fn run_cell(
    topology: TopologyKind,
    arch: ArchKind,
    faults: TopoFaultSpec,
    master_seed: u64,
    seed_group: u64,
) -> dra::topo::NetStats {
    let horizon_s = 4e-3;
    let cell = TopoCellSpec {
        id: format!("{}/{}/{}", arch.label(), topology.label(), faults.label()),
        arch,
        topology,
        link: LinkConfig::default(),
        flows: FlowSpec {
            n_flows: 4,
            rate_pps: 10_000.0,
            packet_bytes: 700,
        },
        faults,
        horizon_s,
        drain_s: 1e-3,
        replications: 1,
        seed_group,
    };
    let net = build_network(&cell, master_seed, 0);
    let mut sim = net.simulation(master_seed ^ seed_group);
    sim.run_until(horizon_s);
    sim.into_model().stats
}

/// The three generator families the sweeps exercise, sized for a
/// debug-build test budget.
const TOPOLOGIES: [TopologyKind; 3] = [
    TopologyKind::FatTree { k: 4 },
    TopologyKind::Mesh2D { rows: 3, cols: 3 },
    TopologyKind::BarabasiAlbert {
        n: 16,
        m: 2,
        seed: 3,
    },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Injected == delivered + dropped + in-flight at the drained
    /// horizon, on every topology × architecture, under router-fault
    /// schedules with arbitrary seeds.
    #[test]
    fn network_conserves_packets_under_router_faults(
        master_seed in any::<u64>(),
        k in 1u32..4,
    ) {
        for topology in TOPOLOGIES {
            for arch in [ArchKind::Bdr, ArchKind::Dra] {
                let faults = TopoFaultSpec::FailRouters { k, at_s: 1e-3 };
                let s = run_cell(topology, arch, faults, master_seed, k as u64);
                prop_assert!(s.injected > 0, "{topology:?}/{arch:?}: no traffic");
                prop_assert_eq!(
                    s.injected,
                    s.delivered + s.dropped_total() + s.in_flight,
                    "{:?}/{:?}: conservation violated", topology, arch
                );
                prop_assert!(s.conserved());
            }
        }
    }

    /// Same invariant under sampled renewal fault/repair timelines —
    /// the schedules the committed sweeps cannot enumerate by hand.
    #[test]
    fn network_conserves_packets_under_renewal_faults(
        master_seed in any::<u64>(),
        // Paper-rate MTTFs are O(10^4) hours; this compression lands
        // several fault/repair events inside the 4 ms horizon.
        delay_scale in 5e-8f64..2e-6,
    ) {
        for topology in TOPOLOGIES {
            for arch in [ArchKind::Bdr, ArchKind::Dra] {
                let faults = TopoFaultSpec::Renewal {
                    delay_scale,
                    repair_h: 200.0,
                };
                let s = run_cell(topology, arch, faults, master_seed, 99);
                prop_assert_eq!(
                    s.injected,
                    s.delivered + s.dropped_total() + s.in_flight,
                    "{:?}/{:?}: conservation violated", topology, arch
                );
                prop_assert!(s.conserved());
            }
        }
    }
}

/// A healthy network delivers every injected packet — conservation's
/// degenerate case, pinned deterministically for all three topologies
/// and both architectures.
#[test]
fn healthy_network_delivers_everything_everywhere() {
    for topology in TOPOLOGIES {
        for arch in [ArchKind::Bdr, ArchKind::Dra] {
            let s = run_cell(topology, arch, TopoFaultSpec::None, 0xD8A_70B0, 0);
            assert!(s.injected > 0, "{topology:?}/{arch:?}");
            assert_eq!(s.delivered, s.injected, "{topology:?}/{arch:?}");
            assert_eq!(s.in_flight, 0, "{topology:?}/{arch:?}");
            assert!(s.conserved());
        }
    }
}
