//! Pinned-workload reproducibility: a synthetic trace serialized to
//! CSV and replayed drives downstream components (FIB, SAR) to
//! identical results — the workflow EXPERIMENTS.md prescribes for
//! archiving an experiment's exact input.

use dra::net::addr::Ipv4Addr;
use dra::net::fib::{Fib, TrieFib};
use dra::net::packet::{Packet, PacketId};
use dra::net::protocol::ProtocolKind;
use dra::net::sar::{cells_for, segment};
use dra::net::trace::{from_csv, to_csv};
use dra::net::traffic::synthesize_trace;

#[test]
fn archived_trace_reproduces_downstream_decisions() {
    let bases = [
        Ipv4Addr::from_octets(10, 1, 0, 0),
        Ipv4Addr::from_octets(10, 2, 0, 0),
        Ipv4Addr::from_octets(10, 3, 0, 0),
    ];
    let trace = synthesize_trace(2_000, 2e9, &bases, 0xA11CE);
    let archived = to_csv(&trace);
    let replayed = from_csv(&archived).expect("own output parses");
    assert_eq!(trace, replayed);

    // Route the replayed trace through a FIB and segment it; every
    // decision must match the original run.
    let mut fib = TrieFib::new();
    for lc in 1..=3u16 {
        fib.insert(format!("10.{lc}.0.0/16").parse().unwrap(), lc);
    }
    let mut lookups = 0u64;
    let mut total_cells = 0u64;
    for (orig, replay) in trace.iter().zip(&replayed) {
        let nh_a = fib.lookup(orig.dst);
        let nh_b = fib.lookup(replay.dst);
        assert_eq!(nh_a, nh_b);
        assert!(nh_a.is_some(), "all destinations are routed");
        lookups += 1;

        let p = Packet::new(
            PacketId(lookups),
            Ipv4Addr(0),
            replay.dst,
            replay.ip_bytes,
            ProtocolKind::Ethernet,
            0.0,
        );
        let cells = segment(&p, 0, nh_b.unwrap());
        assert_eq!(cells.len(), cells_for(p.ip_bytes) as usize);
        total_cells += cells.len() as u64;
    }
    assert_eq!(lookups, 2_000);
    assert!(total_cells >= lookups, "every packet yields >= 1 cell");
}

#[test]
fn distinct_seeds_give_distinct_archives() {
    let bases = [Ipv4Addr::from_octets(10, 1, 0, 0)];
    let a = to_csv(&synthesize_trace(100, 1e9, &bases, 1));
    let b = to_csv(&synthesize_trace(100, 1e9, &bases, 2));
    assert_ne!(a, b);
    // Same seed: identical text.
    let a2 = to_csv(&synthesize_trace(100, 1e9, &bases, 1));
    assert_eq!(a, a2);
}
