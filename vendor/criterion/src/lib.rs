//! Offline vendored subset of the `criterion` 0.5 API.
//!
//! The build environment has no crates.io access, so this crate keeps
//! the workspace's benches compiling and *runnable*: `cargo bench`
//! executes every closure under a simple wall-clock harness (warm-up,
//! then timed batches) and prints `group/name: <mean> ns/iter`.
//! There is no plotting, outlier analysis, or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark id: `&str`, `String`, `BenchmarkId`.
pub trait IntoBenchmarkId {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    measurement_time: Duration,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one call, also primes caches and page faults.
        black_box(f());
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// Top-level handle passed to `criterion_group!` targets.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Bench a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        run_one(&label, self.measurement_time, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored harness keys on
    /// wall-clock measurement time, not sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Bench a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.criterion.measurement_time, f);
        self
    }

    /// Bench a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.criterion.measurement_time, |b| f(b, input));
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, measurement_time: Duration, mut f: F) {
    let mut b = Bencher {
        mean_ns: f64::NAN,
        measurement_time,
    };
    f(&mut b);
    if b.mean_ns.is_nan() {
        println!("{label}: no measurement (closure never called iter)");
    } else if b.mean_ns >= 1e6 {
        println!("{label}: {:.3} ms/iter", b.mean_ns / 1e6);
    } else if b.mean_ns >= 1e3 {
        println!("{label}: {:.3} us/iter", b.mean_ns / 1e3);
    } else {
        println!("{label}: {:.1} ns/iter", b.mean_ns);
    }
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("t");
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn ids_format_as_expected() {
        assert_eq!(BenchmarkId::new("f", 3).into_label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_label(), "x");
    }
}
