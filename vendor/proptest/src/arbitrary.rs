//! `any::<T>()` for the primitive types the workspace draws.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`: uniform over the whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    /// Finite floats in `[-1e9, 1e9]` — full-domain floats (NaN, ∞)
    /// break most numeric properties and upstream's `any::<f64>()` is
    /// rarely what tests want anyway.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_f64() - 0.5) * 2e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u32_hits_both_halves() {
        let mut rng = TestRng::from_seed(5);
        let s = any::<u32>();
        let mut high = false;
        let mut low = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            high |= v > u32::MAX / 2;
            low |= v <= u32::MAX / 2;
        }
        assert!(high && low);
    }
}
