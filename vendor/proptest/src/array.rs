//! `proptest::array` — fixed-size arrays of strategy-generated items.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `[S::Value; N]`, each element drawn
/// independently from the same element strategy.
#[derive(Debug, Clone)]
pub struct UniformArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

macro_rules! uniform_fn {
    ($($name:ident => $n:literal),+ $(,)?) => {$(
        /// Array of the given arity, every element from `element`
        /// (mirrors the upstream function of the same name).
        pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
            UniformArrayStrategy { element }
        }
    )+};
}

uniform_fn!(
    uniform1 => 1,
    uniform2 => 2,
    uniform3 => 3,
    uniform4 => 4,
    uniform8 => 8,
    uniform16 => 16,
    uniform32 => 32,
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn arrays_have_the_right_arity_and_range() {
        let s = uniform8(0u64..50);
        let mut rng = TestRng::from_seed(7);
        for _ in 0..50 {
            let a = s.generate(&mut rng);
            assert_eq!(a.len(), 8);
            assert!(a.iter().all(|&v| v < 50));
        }
    }
}
