//! `proptest::collection::vec` — vectors of strategy-generated items.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// Something usable as the size argument of [`vec`].
pub trait SizeRange {
    /// Inclusive `(min, max)` length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty vec size range");
        (*self.start(), *self.end())
    }
}

/// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

/// Result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.min == self.max {
            self.min
        } else {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = TestRng::from_seed(8);
        let fixed = vec(0u8..10, 5usize);
        assert_eq!(fixed.generate(&mut rng).len(), 5);

        let ranged = vec(0u8..10, 1..4);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }

        let incl = vec(0u8..10, 2..=2);
        assert_eq!(incl.generate(&mut rng).len(), 2);
    }
}
