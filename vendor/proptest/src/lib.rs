//! Offline vendored subset of the `proptest` 1.x API.
//!
//! The build environment has no crates.io access; this crate
//! implements the slice of proptest this workspace uses:
//!
//! * the [`proptest!`], [`prop_compose!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`], and [`prop_assume!`]
//!   macros;
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges, tuples, [`collection::vec`], [`array`] arrays, and
//!   [`option::of`];
//! * [`arbitrary::any`] for the primitive types the tests draw;
//! * a deterministic runner ([`test_runner::TestRng`]) seeded from the
//!   test's name, so every CI run explores the same cases.
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the case number; rerunning reproduces it exactly because the runner
//! is deterministic), and strategies are simple generators rather than
//! value trees.

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// The macro that wraps property-test functions.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     /// docs and attributes pass through
///     #[test]
///     fn name(x in strategy_expr, y in other_strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body;
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "proptest {}: too many prop_assume! rejections \
                                 ({rejected})",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest {} failed at case {} (deterministic \
                                 runner, rerun reproduces): {}",
                                stringify!($name),
                                accepted + 1,
                                msg,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default()); $($rest)*
        );
    };
}

/// Compose a parameterised strategy out of other strategies:
///
/// ```ignore
/// prop_compose! {
///     fn pair(n: usize)(a in 0..n, b in 0..n) -> (usize, usize) { (a, b) }
/// }
/// ```
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)(
        $($arg:pat in $strat:expr),+ $(,)?
    ) -> $out:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*)
            -> impl $crate::strategy::Strategy<Value = $out>
        {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}

/// Assert inside a property body; failure aborts the case with a
/// message instead of unwinding through the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left),
            stringify!($right),
            l,
            r,
            format!($($fmt)+),
        );
    }};
}

/// `assert_ne!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`): {}",
            stringify!($left),
            stringify!($right),
            l,
            format!($($fmt)+),
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
/// (Upstream also accepts `weight => strategy` arms; the workspace
/// only uses the unweighted form.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $(::std::boxed::Box::new($strat),)+
        ])
    };
}

/// Discard the current case (counted against the rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..8, y in -1.0..1.0_f64) {
            prop_assert!((3..8).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn tuples_and_maps(v in crate::collection::vec((0u8..=32, any::<bool>()), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (len, _flag) in &v {
                prop_assert!(*len <= 32);
            }
        }
    }

    prop_compose! {
        fn bounded_pair(n: usize)(a in 0..n, b in 0..n) -> (usize, usize) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn composed_strategy_respects_params(p in bounded_pair(5)) {
            prop_assert!(p.0 < 5 && p.1 < 5);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let va: Vec<u64> = (0..16).map(|_| s.generate(&mut a)).collect();
        let vb: Vec<u64> = (0..16).map(|_| s.generate(&mut b)).collect();
        assert_eq!(va, vb);
    }
}
