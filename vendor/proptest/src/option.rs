//! `proptest::option` — `Option<T>` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option<S::Value>`: `None` with the configured
/// probability, else `Some` of the inner strategy's draw.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
    none_prob: f64,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.next_f64() < self.none_prob {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `Option` of `inner`, `None` one time in four (upstream's default
/// weights `Some` 3:1 over `None`).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy {
        inner,
        none_prob: 0.25,
    }
}

/// `Option` of `inner` with an explicit `Some` probability.
pub fn weighted<S: Strategy>(some_prob: f64, inner: S) -> OptionStrategy<S> {
    assert!((0.0..=1.0).contains(&some_prob), "probability out of range");
    OptionStrategy {
        inner,
        none_prob: 1.0 - some_prob,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn of_mixes_none_and_some() {
        let s = of(0u32..10);
        let mut rng = TestRng::from_seed(3);
        let draws: Vec<_> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(Option::is_none));
        assert!(draws.iter().any(Option::is_some));
        assert!(draws.iter().flatten().all(|&v| v < 10));
    }
}
