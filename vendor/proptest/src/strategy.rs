//! The `Strategy` trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a deterministic function of the runner RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returning one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`). Upstream
/// supports per-arm weights; the workspace only uses the unweighted
/// form.
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Build a [`OneOf`] (used by the `prop_oneof!` macro).
pub fn one_of<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
    OneOf { options }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H),
    (A, B, C, D, E, F, G, H, I),
    (A, B, C, D, E, F, G, H, I, J),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_applies_function() {
        let s = (0u32..10).prop_map(|x| x * 2);
        let mut rng = TestRng::from_seed(1);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn just_returns_constant() {
        let mut rng = TestRng::from_seed(2);
        assert_eq!(Just(41).generate(&mut rng), 41);
    }

    #[test]
    fn signed_ranges_cover_negative_values() {
        let s = -5i32..5;
        let mut rng = TestRng::from_seed(3);
        let mut saw_negative = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((-5..5).contains(&v));
            saw_negative |= v < 0;
        }
        assert!(saw_negative);
    }
}
