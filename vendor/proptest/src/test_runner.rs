//! Deterministic runner support: configuration, errors, and the RNG.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
    /// Cap on total `prop_assume!` rejections before the test errors.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// Default configuration with a different case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is discarded, not failed.
    Reject(String),
    /// A `prop_assert*` failed; the test fails.
    Fail(String),
}

/// SplitMix64 generator used to drive strategies.
///
/// Deliberately deterministic: the seed is derived from the property's
/// name, so every run (and every CI machine) explores the same cases
/// and failures reproduce without recording a seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a property name (FNV-1a of the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Seed directly.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, span)`; `span > 0`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            let lo = m as u64;
            if lo >= span || lo >= (span.wrapping_neg() % span) {
                return (m >> 64) as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_seeding_differs_per_name() {
        let a = TestRng::from_name("alpha").next_u64();
        let b = TestRng::from_name("beta").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn below_is_bounded() {
        let mut r = TestRng::from_seed(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
