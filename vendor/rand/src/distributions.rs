//! The `Standard` distribution and the `Distribution` trait.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: uniform over the full integer
/// domain, uniform in `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits → uniform multiples of 2^-53 in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn f32_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f32 = Standard.sample(&mut r);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = SmallRng::seed_from_u64(4);
        let heads = (0..10_000)
            .filter(|_| {
                let b: bool = Standard.sample(&mut r);
                b
            })
            .count();
        assert!((heads as f64 / 10_000.0 - 0.5).abs() < 0.02);
    }
}
