//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of `rand` it actually uses:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits with `gen`,
//!   `gen_range`, and `gen_bool`;
//! * [`rngs::SmallRng`] — implemented as xoshiro256++ (the same family
//!   the real crate uses on 64-bit targets), seeded via SplitMix64
//!   exactly like `SeedableRng::seed_from_u64` upstream;
//! * [`distributions::Standard`] for `f64`/`f32`/integers/`bool`.
//!
//! Behaviour is deterministic per seed and platform-independent; it is
//! **not** stream-compatible with the real `rand` crate (no test in
//! this workspace depends on upstream streams, only on determinism and
//! statistical quality).

pub mod distributions;
pub mod rngs;

use distributions::{Distribution, Standard};

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (including unsized `&mut R` receivers).
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 — the same
    /// scheme the real `rand` crate documents for this method.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step: advances `state` and returns the mixed output.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform sampling from range types (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Uniform draw in `[0, span)` via 128-bit widening multiply with a
/// rejection step (Lemire's method), bias-free.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span || lo >= (span.wrapping_neg() % span) {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: $t = Standard.sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let k = r.gen_range(0usize..10);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x = r.gen_range(-2.0..3.0_f64);
            assert!((-2.0..3.0).contains(&x));
        }
        let k = r.gen_range(5u8..=5);
        assert_eq!(k, 5);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_respects_p() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn unsized_rng_receiver_works() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut r = SmallRng::seed_from_u64(5);
        let _ = draw(&mut r);
    }
}
