//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG: xoshiro256++.
///
/// Matches the role of `rand::rngs::SmallRng` on 64-bit targets. The
/// state is seeded from 32 bytes; the all-zero state (which would be a
/// fixed point) is remapped to a fixed non-zero pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(b);
        }
        if s == [0; 4] {
            // Avoid the degenerate all-zero orbit.
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = SmallRng::from_seed([0; 32]);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn next_u32_uses_high_bits() {
        let mut a = SmallRng::seed_from_u64(11);
        let mut b = SmallRng::seed_from_u64(11);
        assert_eq!(a.next_u32() as u64, b.next_u64() >> 32);
    }
}
